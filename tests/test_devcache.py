"""Tests for the device-DRAM page-frame cache (repro.devcache).

Covers the three eviction policies (hit/miss/eviction/dirty write-back
invariants), the stride prefetcher's accuracy accounting, the measured
hit-rate win on the mmap-heavy workload versus cache-off, and the
byte-determinism contract: repeats are byte-identical, parallel serving
matches serial, and a cache-off run never emits devcache keys.
"""

import json

import pytest

from repro.bench.harness import run_workload
from repro.cluster import TenantSpec, serve_cluster, validate_cluster_run
from repro.core.bytefs import build_stack
from repro.devcache import (
    ClockPolicy,
    DevCacheConfig,
    DeviceCache,
    EVICTION_POLICY_NAMES,
    HotColdPolicy,
    LRUPolicy,
    StridePrefetcher,
    make_policy,
)
from repro.ftl.ftl import FTL, FTLConfig
from repro.nand.chip import FlashArray
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import ChannelArray
from repro.stats.traffic import StructKind, TrafficStats
from repro.workloads import MmapStress
from tests.conftest import SMALL_GEOMETRY

PAGE = 512


def make_cache(cache_pages=4, policy="lru", prefetch=False, **cfg_kw):
    """A DeviceCache over a real FTL on a tiny geometry."""
    geo = FlashGeometry(
        n_channels=2,
        ways_per_channel=1,
        blocks_per_way=16,
        pages_per_block=16,
        page_size=PAGE,
    )
    clock = VirtualClock(1)
    stats = TrafficStats()
    timing = TimingModel()
    ftl = FTL(
        geo,
        FlashArray(geo),
        ChannelArray(geo.n_channels),
        timing,
        clock,
        stats,
        FTLConfig(write_buffer_pages=4),
    )
    config = DevCacheConfig(
        cache_bytes=cache_pages * PAGE,
        policy=policy,
        prefetch=prefetch,
        **cfg_kw,
    )
    return DeviceCache(ftl, config, timing, clock, stats), ftl


def page(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE


# ---------------------------------------------------------------------- #
# eviction policies
# ---------------------------------------------------------------------- #

def test_lru_evicts_least_recently_used():
    p = LRUPolicy()
    for lpa in (1, 2, 3):
        p.admit(lpa)
    p.touch(1)  # recency order now 2, 3, 1
    assert p.victim() == 2
    assert p.victim() == 3
    assert p.victim() == 1
    assert len(p) == 0


def test_clock_gives_second_chance():
    p = ClockPolicy()
    for lpa in (1, 2, 3):
        p.admit(lpa)
    # All referenced: the first rotation clears every bit, then the hand
    # lands back on the oldest frame.
    assert p.victim() == 1
    p.touch(2)  # re-reference 2 while the hand is elsewhere
    assert p.victim() == 3  # 2's set bit saves it, 3's clear bit doesn't
    assert p.victim() == 2
    assert len(p) == 0


def test_hotcold_promotes_by_reuse_distance_and_resists_scans():
    p = HotColdPolicy(capacity=4, hot_fraction=0.5, hot_distance=4)
    p.admit(10)
    p.touch(10)  # distance 1 <= 4: promoted
    assert p.is_hot(10)
    # A scan admits cold frames; victims must come from the cold queue
    # while the hot frame stays resident.
    for lpa in (20, 21, 22):
        p.admit(lpa)
    assert p.victim() == 20
    assert p.victim() == 21
    assert p.is_hot(10)
    # Only when the cold queue is empty does the hot queue give up frames.
    assert p.victim() == 22
    assert p.victim() == 10


def test_hotcold_long_distance_touch_stays_cold():
    p = HotColdPolicy(capacity=8, hot_fraction=0.5, hot_distance=2)
    p.admit(1)
    for lpa in range(2, 7):
        p.admit(lpa)  # 5 ticks pass
    p.touch(1)  # reuse distance 5 > 2: refreshed but still cold
    assert not p.is_hot(1)
    assert p.victim() == 2  # 1 moved to the cold tail


def test_make_policy_rejects_unknown_name():
    assert make_policy("lru", 4).name == "lru"
    assert make_policy("clock", 4).name == "clock"
    assert make_policy("hotcold", 4).name == "hotcold"
    with pytest.raises(ValueError, match="unknown eviction policy"):
        make_policy("mru", 4)


# ---------------------------------------------------------------------- #
# stride prefetcher
# ---------------------------------------------------------------------- #

def test_prefetcher_detects_sequential_stream():
    pf = StridePrefetcher(degree=2, min_confidence=2)
    assert pf.observe(100) == []
    assert pf.observe(101) == []  # stride seen once
    assert pf.observe(102) == [103, 104]


def test_prefetcher_detects_strided_stream():
    pf = StridePrefetcher(degree=3, min_confidence=2, stream_shift=12)
    assert pf.observe(100) == []
    assert pf.observe(104) == []
    assert pf.observe(108) == [112, 116, 120]


def test_prefetcher_same_page_reread_keeps_stride():
    pf = StridePrefetcher(degree=1, min_confidence=2)
    pf.observe(100)
    pf.observe(101)
    assert pf.observe(101) == []  # no direction signal
    assert pf.observe(102) == [103]  # stride-1 stream still live


def test_prefetcher_stream_table_is_lru_bounded():
    pf = StridePrefetcher(degree=1, min_confidence=1, max_streams=2,
                          stream_shift=8)
    pf.observe(0)      # region 0
    pf.observe(256)    # region 1
    pf.observe(512)    # region 2 evicts region 0
    assert pf.observe(1) == []  # region 0 restarts from scratch
    assert pf.observe(2) == [3]


# ---------------------------------------------------------------------- #
# the cache itself, per policy
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("policy", EVICTION_POLICY_NAMES)
def test_read_miss_then_hit(policy):
    cache, ftl = make_cache(cache_pages=4, policy=policy)
    ftl.write_page(7, page(7), StructKind.OTHER)
    data = cache.read_page(7)
    assert data == page(7)
    assert (cache.hits, cache.misses) == (0, 1)
    assert cache.read_page(7) == page(7)
    assert (cache.hits, cache.misses) == (1, 1)
    cache.check_invariants()


@pytest.mark.parametrize("policy", EVICTION_POLICY_NAMES)
def test_dirty_eviction_writes_back_to_flash(policy):
    # Watermarks off (high = capacity) so eviction, not the background
    # write-back, is what cleans the victim.
    cache, ftl = make_cache(cache_pages=2, policy=policy,
                            dirty_high_watermark=1.0,
                            dirty_low_watermark=1.0)
    for lpa in range(3):  # third install forces one eviction
        cache.write_page(lpa, page(lpa))
    assert len(cache._frames) <= 2
    assert cache.evictions_dirty == 1
    cache.check_invariants()
    # The evicted page's data reached the FTL, not the void.
    cache.drain_write_buffer()
    for lpa in range(3):
        assert ftl.read_page(lpa) == page(lpa)


@pytest.mark.parametrize("policy", EVICTION_POLICY_NAMES)
def test_clean_eviction_skips_write_back(policy):
    cache, ftl = make_cache(cache_pages=2, policy=policy)
    for lpa in range(4):
        ftl.write_page(lpa, page(lpa), StructKind.OTHER)
    for lpa in range(4):  # read-only traffic: all evictions are clean
        cache.read_page(lpa)
    assert cache.evictions_clean == 2
    assert cache.evictions_dirty == 0
    assert cache.writebacks == 0
    cache.check_invariants()


def test_write_hit_overwrites_and_redirties():
    cache, ftl = make_cache(cache_pages=4)
    cache.write_page(3, page(1))
    cache.drain_write_buffer()  # frame now resident and clean
    assert cache.gauges()["devcache_dirty_frames"] == 0
    cache.write_page(3, page(2))
    assert cache.gauges()["devcache_dirty_frames"] == 1
    assert cache.read_page(3) == page(2)
    cache.check_invariants()


def test_watermark_write_back_cleans_oldest_first():
    cache, ftl = make_cache(
        cache_pages=8, dirty_high_watermark=0.5, dirty_low_watermark=0.25
    )
    for lpa in range(5):  # 5 dirty > 4 high: drain down to 2
        cache.write_page(lpa, page(lpa))
    assert cache.writebacks == 3
    assert len(cache._dirty) == 2
    # Oldest-dirtied pages were cleaned; the frames stay resident.
    assert len(cache._frames) == 5
    assert list(cache._dirty) == [3, 4]
    cache.check_invariants()


def test_trim_discards_without_write_back():
    cache, ftl = make_cache(cache_pages=4)
    cache.write_page(5, page(5))
    cache.trim(5)
    assert cache.writebacks == 0
    assert cache.evictions_dirty == 0
    assert not ftl.is_mapped(5)
    cache.check_invariants()
    cache.drain_write_buffer()
    assert cache.flushes == 0  # nothing dirty left to flush


def test_drain_flushes_every_dirty_frame_and_is_idempotent():
    cache, ftl = make_cache(cache_pages=8)
    for lpa in range(4):
        cache.write_page(lpa, page(lpa))
    cache.drain_write_buffer()
    assert cache.flushes == 4
    for lpa in range(4):
        assert ftl.read_page(lpa) == page(lpa)
    cache.drain_write_buffer()  # nothing dirty: no extra flushes
    assert cache.flushes == 4
    cache.check_invariants()


def test_hit_costs_one_dram_access():
    cache, ftl = make_cache(cache_pages=4)
    cache.write_page(1, page(1), background=True)
    t0 = cache.clock.now
    cache.read_page(1)
    assert cache.clock.now - t0 == pytest.approx(
        cache.timing.dram_access_ns
    )


def test_read_pages_mixes_hits_and_misses():
    cache, ftl = make_cache(cache_pages=8)
    for lpa in range(4):
        ftl.write_page(lpa, page(lpa), StructKind.OTHER)
    cache.read_page(0)
    cache.read_page(2)
    out = cache.read_pages([0, 1, 2, 3])
    assert out == [page(0), page(1), page(2), page(3)]
    assert cache.hits == 2 and cache.misses == 4
    cache.check_invariants()


# ---------------------------------------------------------------------- #
# prefetch accuracy accounting
# ---------------------------------------------------------------------- #

def test_prefetch_hits_are_counted():
    cache, ftl = make_cache(cache_pages=16, prefetch=True,
                            prefetch_degree=2)
    for lpa in range(12):
        ftl.write_page(lpa, page(lpa), StructKind.OTHER)
    for lpa in range(8):  # sequential scan
        cache.read_page(lpa)
    assert cache.prefetch_issued > 0
    assert cache.prefetch_hits > 0
    # Every accounted prefetch outcome is one of hit / wasted / still
    # resident-unreferenced.
    assert cache.prefetch_hits + cache.prefetch_wasted <= \
        cache.prefetch_issued
    cache.check_invariants()


def test_prefetch_only_fetches_mapped_pages():
    cache, ftl = make_cache(cache_pages=16, prefetch=True)
    for lpa in range(3):  # only 0..2 exist on flash
        ftl.write_page(lpa, page(lpa), StructKind.OTHER)
    for lpa in range(3):
        cache.read_page(lpa)
    # Predictions past the mapped range are filtered, not fetched.
    assert cache.prefetch_issued == 0


def test_wasted_prefetch_is_counted_on_discard():
    cache, ftl = make_cache(cache_pages=16, prefetch=True,
                            prefetch_degree=2)
    for lpa in range(8):
        ftl.write_page(lpa, page(lpa), StructKind.OTHER)
    for lpa in range(3):  # confidence reached at lpa=2: prefetch 3, 4
        cache.read_page(lpa)
    assert cache.prefetch_issued == 2
    cache.trim_many(3, 2)  # both prefetched frames die unreferenced
    assert cache.prefetch_wasted == 2
    cache.check_invariants()


# ---------------------------------------------------------------------- #
# full-stack behaviour
# ---------------------------------------------------------------------- #

def _mmap_run(devcache):
    return run_workload(
        "bytefs",
        MmapStress(n_ops=600, n_threads=2, file_pages=96),
        page_cache_pages=128,
        devcache=devcache,
    )


def test_mmap_heavy_hit_rate_win():
    """The acceptance measurement: on the mmap-heavy workload the cache
    absorbs host-page-cache misses in device DRAM — fewer flash reads,
    fewer flash writes (write absorption), lower elapsed time."""
    off = _mmap_run(None)
    cfg = DevCacheConfig(cache_bytes=1 << 20, policy="lru", prefetch=True)

    probe_gauges = {}

    def probe(phase, clock, stats, device, fs):
        if phase == "measure-end":
            probe_gauges.update(device.gauges())

    on = run_workload(
        "bytefs",
        MmapStress(n_ops=600, n_threads=2, file_pages=96),
        page_cache_pages=128,
        devcache=cfg,
        stack_probe=probe,
    )
    assert on.elapsed_s < off.elapsed_s
    assert on.flash_read < off.flash_read
    assert on.flash_write < off.flash_write
    hits = probe_gauges["devcache_hits"]
    misses = probe_gauges["devcache_misses"]
    assert hits / (hits + misses) > 0.3


@pytest.mark.parametrize("policy", EVICTION_POLICY_NAMES)
def test_stack_run_is_repeatable_per_policy(policy):
    cfg = DevCacheConfig(cache_bytes=64 * 4096, policy=policy,
                         prefetch=True)
    docs = [
        json.dumps(_mmap_run(cfg).to_json(), sort_keys=True)
        for _ in range(2)
    ]
    assert docs[0] == docs[1]


def test_cache_off_emits_no_devcache_state():
    clock, stats, device, fs = build_stack(
        "bytefs", geometry=SMALL_GEOMETRY
    )
    assert device.devcache is None
    assert not any(k.startswith("devcache_") for k in device.gauges())


def test_cache_on_gauges_surface_through_device():
    cfg = DevCacheConfig(cache_bytes=32 * 4096)
    clock, stats, device, fs = build_stack(
        "bytefs", geometry=SMALL_GEOMETRY, devcache=cfg
    )
    fd = fs.open("/f", 0o100 | 0o2)  # O_CREAT | O_RDWR
    fs.write(fd, b"x" * 4096)
    fs.fsync(fd)
    fs.close(fd)
    gauges = device.gauges()
    for key in ("devcache_frames", "devcache_hits", "devcache_misses"):
        assert key in gauges
    device.devcache.check_invariants()


def test_serve_with_devcache_parallel_matches_serial():
    tenants = [
        TenantSpec(name=f"t{i}", workload="synthetic", n_ops=30,
                   rate_ops_s=200_000.0, device=i % 2)
        for i in range(4)
    ]

    def run(workers):
        res = serve_cluster(
            tenants,
            fs_name="bytefs",
            n_devices=2,
            sched="drr",
            seed=42,
            queue_depth=2,
            max_queue=256,
            geometry=SMALL_GEOMETRY,
            devcache=DevCacheConfig(cache_bytes=64 * 4096,
                                    policy="clock", prefetch=True),
            workers=workers,
        )
        doc = res.to_json()
        assert validate_cluster_run(doc) == []
        assert doc["devcache"]["policy"] == "clock"
        return json.dumps(doc, sort_keys=True)

    serial = run(0)
    assert run(2) == serial
