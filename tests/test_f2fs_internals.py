"""F2FS-specific internals: checkpoints, segment cleaning, roll-forward."""

import pytest

from repro.fs.vfs import O_CREAT, O_RDWR
from tests.conftest import make_stack


def test_checkpoint_persists_nat_and_next_ino():
    _clk, _st, device, fs = make_stack("f2fs")
    fd = fs.open("/a", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 1000)
    fs.close(fd)
    fs.sync()
    v1 = fs._cp_version
    ino_before = fs._next_ino
    device.power_fail()
    fs.crash()
    fs.remount()
    assert fs._cp_version >= v1
    assert fs._next_ino >= ino_before
    assert fs.exists("/a")


def test_segment_cleaning_under_churn():
    _clk, st, _dev, fs = make_stack("f2fs")
    fd = fs.open("/churn", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * (64 * 4096))
    fs.fsync(fd)
    # Overwrite the same range until out-of-place writes exhaust the free
    # segments and force cleaning (the device holds ~100 segments).
    rounds = 220
    for round_no in range(rounds):
        fs.pwrite(fd, 0, bytes([round_no % 256]) * (32 * 4096))
        fs.fsync(fd)
    fs.close(fd)
    assert st.counters.get("f2fs_segment_cleanings", 0) > 0
    fd = fs.open("/churn", O_RDWR)
    assert fs.pread(fd, 0, 10) == bytes([(rounds - 1) % 256]) * 10
    assert fs.pread(fd, 40 * 4096, 4) == b"0000"
    fs.close(fd)


def test_roll_forward_reattaches_dentry_in_rolled_back_dir():
    """The parent dir's dentry blocks roll back to the checkpoint; the
    recovered node's parent/name footer restores the link."""
    _clk, _st, device, fs = make_stack("f2fs")
    fs.mkdir("/d")
    fs.sync()
    fd = fs.open("/d/fsynced", O_CREAT | O_RDWR)
    fs.write(fd, b"F" * 500)
    fs.fsync(fd)
    fs.close(fd)
    device.power_fail()
    fs.crash()
    rec = fs.remount()
    assert rec["rolled_forward"] >= 1
    assert fs.listdir("/d") == ["fsynced"]
    fd = fs.open("/d/fsynced", O_RDWR)
    assert fs.pread(fd, 0, 500) == b"F" * 500
    fs.close(fd)


def test_roll_forward_keeps_newest_version():
    _clk, _st, device, fs = make_stack("f2fs")
    fs.sync()
    fd = fs.open("/v", O_CREAT | O_RDWR)
    fs.write(fd, b"v1" * 100)
    fs.fsync(fd)
    fs.pwrite(fd, 0, b"v2" * 100)
    fs.fsync(fd)
    fs.close(fd)
    device.power_fail()
    fs.crash()
    fs.remount()
    fd = fs.open("/v", O_RDWR)
    assert fs.pread(fd, 0, 4) == b"v2v2"
    fs.close(fd)


def test_rename_then_fsync_recovers_new_name():
    _clk, _st, device, fs = make_stack("f2fs")
    fs.sync()
    fd = fs.open("/old", O_CREAT | O_RDWR)
    fs.write(fd, b"n" * 100)
    fs.fsync(fd)
    fs.close(fd)
    fs.rename("/old", "/new")
    fd = fs.open("/new", O_RDWR)
    fs.fsync(fd)  # re-marks the node with the new parent/name footer
    fs.close(fd)
    device.power_fail()
    fs.crash()
    fs.remount()
    assert fs.exists("/new")
    assert not fs.exists("/old")
