"""Unit tests for the crash-site fault injector state machine."""

from __future__ import annotations

import pytest

from repro.faults import (
    NULL_INJECTOR,
    CrashPoint,
    FaultInjector,
    FaultPlan,
)


def make_log_site(log):
    """A site whose apply(k) records how many bytes persisted."""

    def _apply(k):
        log.append(k)

    return _apply


def test_off_mode_applies_and_counts_nothing():
    inj = FaultInjector()
    log = []
    inj.site("s", make_log_site(log), nbytes=256, atom=64)
    inj.point("p")
    assert log == [256]
    assert inj.n_sites == 0
    assert inj.trace == []


def test_counting_numbers_sites_in_order():
    inj = FaultInjector()
    log = []
    inj.start_count()
    inj.site("a", make_log_site(log), nbytes=128, atom=64)
    inj.point("b")
    inj.site("a", make_log_site(log), nbytes=64, atom=64)
    inj.disarm()
    assert log == [128, 64]  # counting never drops mutations
    assert [r.index for r in inj.trace] == [0, 1, 2]
    assert [r.label for r in inj.trace] == ["a", "b", "a"]
    assert inj.label_histogram() == {"a": 2, "b": 1}


def test_tearable_requires_multiple_atoms():
    inj = FaultInjector()
    inj.start_count()
    inj.site("multi", nbytes=256, atom=64)
    inj.site("single", nbytes=64, atom=64)
    inj.site("opaque", nbytes=256, atom=0)
    inj.disarm()
    assert [r.tearable for r in inj.trace] == [True, False, False]


def test_armed_fires_at_planned_site_and_goes_dead():
    inj = FaultInjector()
    log = []
    inj.arm(FaultPlan(crash_site=1))
    inj.site("a", make_log_site(log), nbytes=64)
    with pytest.raises(CrashPoint) as exc:
        inj.site("b", make_log_site(log), nbytes=64)
    assert exc.value.site == 1
    assert exc.value.label == "b"
    assert log == [64]  # site b's mutation never applied
    # Dead state: mutations during stack unwind are discarded.
    inj.site("c", make_log_site(log), nbytes=64)
    assert log == [64]
    assert inj.fired is not None
    assert (inj.fired.site, inj.fired.label) == (1, "b")
    # disarm(): recovery-time writes apply again.
    inj.disarm()
    inj.site("d", make_log_site(log), nbytes=64)
    assert log == [64, 64]


def test_torn_cut_is_atom_aligned_prefix():
    inj = FaultInjector()
    log = []
    inj.arm(FaultPlan(crash_site=0, torn=True, seed=7))
    with pytest.raises(CrashPoint) as exc:
        inj.site("t", make_log_site(log), nbytes=4096, atom=512)
    torn = exc.value.torn_bytes
    assert torn % 512 == 0
    assert 512 <= torn < 4096
    assert log == [torn]  # only the prefix persisted
    assert inj.fired.torn_bytes == torn
    assert inj.fired.nbytes == 4096


def test_torn_cut_deterministic_in_seed():
    def fire(seed):
        inj = FaultInjector()
        inj.arm(FaultPlan(crash_site=0, torn=True, seed=seed))
        with pytest.raises(CrashPoint) as exc:
            inj.site("t", nbytes=4096, atom=64)
        return exc.value.torn_bytes

    assert fire(3) == fire(3)


def test_torn_on_atomic_site_falls_back_to_clean_crash():
    inj = FaultInjector()
    log = []
    inj.arm(FaultPlan(crash_site=0, torn=True, seed=0))
    with pytest.raises(CrashPoint) as exc:
        inj.site("atomic", make_log_site(log), nbytes=64, atom=64)
    assert exc.value.torn_bytes == 0
    assert log == []  # all-or-nothing: nothing persisted


def test_nested_sites_inside_torn_apply_are_not_numbered():
    inj = FaultInjector()
    inner_log = []

    def outer_apply(k):
        # A torn MMIO store still goes through an inner site (e.g. the
        # firmware log append); it must apply fully, un-numbered.
        inj.site("inner", make_log_site(inner_log), nbytes=k, atom=8)

    inj.arm(FaultPlan(crash_site=0, torn=True, seed=1))
    with pytest.raises(CrashPoint) as exc:
        inj.site("outer", outer_apply, nbytes=256, atom=64)
    assert inner_log == [exc.value.torn_bytes]
    assert inj.fired.label == "outer"


def test_null_injector_refuses_to_arm_but_passes_through():
    log = []
    NULL_INJECTOR.site("s", make_log_site(log), nbytes=64)
    NULL_INJECTOR.point("p")
    assert log == [64]
    with pytest.raises(RuntimeError):
        NULL_INJECTOR.start_count()
    with pytest.raises(RuntimeError):
        NULL_INJECTOR.arm(FaultPlan(crash_site=0))


def test_stats_fault_counters_bumped():
    from repro.stats.traffic import TrafficStats

    stats = TrafficStats()
    inj = FaultInjector(stats=stats)
    inj.arm(FaultPlan(crash_site=1, torn=True, seed=0))
    inj.site("a", nbytes=64)
    with pytest.raises(CrashPoint):
        inj.site("b", lambda k: None, nbytes=4096, atom=512)
    snap = stats.snapshot()
    assert snap["fault_counters"]["fault_sites_reached"] == 2
    assert snap["fault_counters"]["fault_crashes_injected"] == 1
    assert snap["fault_counters"]["fault_torn_injected"] == 1
