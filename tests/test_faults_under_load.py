"""Faults under load: crash-and-recover devices mid-serve.

The matrix crosses the faults axis (crash-at-time / crash-after-ops,
torn or clean) with the scheduling axis (fifo / drr / token-bucket)
for every file system, and asserts three invariants per cell:

1. **oracle-clean recovery** — every acked-durable op survives the
   power cycle (the fsync-durability oracle scrubs each tenant's
   namespace right after remount);
2. **ledger balance** — submitted == served + rejected + dropped +
   lost_to_crash for every tenant (also enforced by FSSAN-QUEUE inside
   the run);
3. **byte-determinism** — two identical invocations serialize to the
   same ``repro.cluster.run/v2`` document, byte for byte, crash and
   recovery included.

A mutation check proves the matrix has teeth: a planted recovery bug
(remount corrupting durable data) must turn the oracle verdict red.
``repro.host.mmap`` gets its crash coverage here too: power loss at
every site inside ``msync`` must leave an oracle-admissible image.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    SCHEMA,
    TenantSpec,
    serve_cluster,
    validate_cluster_run,
)
from repro.core.bytefs import build_stack
from repro.devcache import DevCacheConfig
from repro.faults import (
    CrashPoint,
    DeviceCrash,
    FaultInjector,
    FaultPlan,
    OracleFS,
    check_fault_plan,
    parse_fault,
)
from repro.fs.vfs import O_CREAT, O_RDWR
from tests.conftest import ALL_FS, SMALL_GEOMETRY

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

SCHEDS = ("fifo", "drr", "token-bucket")

#: one crash trigger per kind; ops=9 lands mid-backlog, t=2ms mid-run
TRIGGERS = {
    "at-time": dict(at_s=0.002),
    "after-ops": dict(after_ops=9),
}


def _tenants(n_ops: int = 18) -> list:
    """Two tenants on device 0: a mixed writer and a light reader."""
    return [
        TenantSpec(
            name="a", workload="mixed", rate_ops_s=4_000.0,
            slo_ms=5.0, n_ops=n_ops, device=0,
        ),
        TenantSpec(
            name="b", workload="light", rate_ops_s=1_000.0,
            slo_ms=2.0, n_ops=max(4, n_ops * 2 // 3), device=0,
        ),
    ]


def _serve(fs_name, sched, crash, seed=42, **kw):
    return serve_cluster(
        _tenants(),
        fs_name=fs_name,
        n_devices=1,
        sched=sched,
        seed=seed,
        geometry=SMALL_GEOMETRY,
        queue_depth=2,
        max_queue=256,
        faults=[crash] if crash is not None else None,
        **kw,
    )


def _canonical(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def _assert_ledger(doc) -> None:
    for t in doc["tenants"]:
        assert t["submitted"] == (
            t["ops"] + t["rejected"] + t["dropped"] + t["lost_to_crash"]
        ), t
        assert t["outage_rejected"] <= t["rejected"]
        assert t["slo_violations_outage"] <= t["slo_violations"]


# ---------------------------------------------------------------------- #
# the faults x scheduling matrix
# ---------------------------------------------------------------------- #

MATRIX = [
    (fs, sched, trig)
    for fs in ALL_FS
    for sched in SCHEDS
    for trig in sorted(TRIGGERS)
]


@pytest.mark.parametrize(
    "fs,sched,trig", MATRIX,
    ids=[f"{fs}-{sched}-{trig}" for fs, sched, trig in MATRIX],
)
def test_crash_recover_matrix(fs, sched, trig):
    crash = DeviceCrash(0, **TRIGGERS[trig])
    result = _serve(fs, sched, crash)
    doc = result.to_json()
    assert doc["schema"] == SCHEMA
    assert validate_cluster_run(doc) == []
    # The planned fault always executes, with a full recovery record.
    assert len(result.recovery) == 1
    rec = result.recovery[0]
    assert rec["oracle"]["clean"], rec["oracle"]["errors"]
    assert rec["oracle"]["checked"] == ["a", "b"]
    assert rec["t_up_ns"] >= rec["t_down_ns"]
    assert rec["virtual_ns"] == rec["t_up_ns"] - rec["t_down_ns"]
    assert rec["wall_s"] > 0.0  # live record keeps the measured time
    _assert_ledger(doc)
    # Byte-determinism across a double run, crash included; wall_s is
    # nulled in the document so this can hold at all.
    assert doc["recovery"][0]["wall_s"] is None
    assert _canonical(_serve(fs, sched, crash)) == _canonical(result)


def test_crash_with_torn_write_recovers_clean():
    crash = DeviceCrash(0, after_ops=7, torn=True)
    result = _serve("bytefs", "drr", crash)
    rec = result.recovery[0]
    assert rec["oracle"]["clean"], rec["oracle"]["errors"]
    assert rec["trigger"]["torn"] is True
    fc = result.devices[0]["fault_counters"]
    assert fc["fault_power_cycles"] == 1
    # A torn cut needs a tearable in-flight mutation; when one fired,
    # the counters and the fired record must agree.
    if rec["fired"] is not None:
        assert fc["fault_crashes_injected"] == 1
        if rec["fired"]["torn_bytes"]:
            assert fc["fault_torn_injected"] == 1
            assert rec["fired"]["torn_bytes"] < rec["fired"]["nbytes"]


def test_crash_recover_matrix_cell_with_devcache():
    """One matrix cell with the device-DRAM cache tier enabled: the
    crash can now land on a devcache eviction/write-back/flush point,
    but the cache lives in battery-backed DRAM, so every acked-durable
    op must still survive the power loss — oracle clean, and the run
    stays byte-deterministic with the cache in the stack."""
    devcache = DevCacheConfig(cache_bytes=64 * 4096, policy="lru",
                              prefetch=True)
    crash = DeviceCrash(0, **TRIGGERS["after-ops"])
    result = _serve("bytefs", "drr", crash, devcache=devcache)
    doc = result.to_json()
    assert validate_cluster_run(doc) == []
    assert doc["devcache"] == {
        "cache_bytes": 64 * 4096, "policy": "lru", "prefetch": True,
    }
    assert len(result.recovery) == 1
    rec = result.recovery[0]
    assert rec["oracle"]["clean"], rec["oracle"]["errors"]
    assert rec["oracle"]["checked"] == ["a", "b"]
    _assert_ledger(doc)
    rerun = _serve("bytefs", "drr", crash, devcache=devcache)
    assert _canonical(rerun) == _canonical(result)


def test_per_device_fault_counters_surface_in_result():
    clean = _serve("bytefs", "fifo", None)
    assert clean.devices[0]["fault_counters"] == {}
    faulted = _serve("bytefs", "fifo", DeviceCrash(0, at_s=0.001))
    fc = faulted.devices[0]["fault_counters"]
    assert fc["fault_power_cycles"] == 1
    assert validate_cluster_run(faulted.to_json()) == []


def test_unreached_trigger_fires_at_drain():
    # t=10s is far past the drain of a few-ms run: the crash must still
    # execute (between ops, nothing in flight) and be oracle-checked.
    result = _serve("ext4", "fifo", DeviceCrash(0, at_s=10.0))
    rec = result.recovery[0]
    assert rec["fired"] is None
    assert rec["oracle"]["clean"], rec["oracle"]["errors"]
    assert sum(t.lost_to_crash for t in result.tenants) == 0


def test_outage_policies_requeue_vs_reject():
    crash = DeviceCrash(0, at_s=0.002)
    requeue = _serve("bytefs", "fifo", crash, outage_policy="requeue")
    reject = _serve("bytefs", "fifo", crash, outage_policy="reject")
    doc_rq, doc_rj = requeue.to_json(), reject.to_json()
    _assert_ledger(doc_rq)
    _assert_ledger(doc_rj)
    assert doc_rq["outage_policy"] == "requeue"
    assert doc_rj["outage_policy"] == "reject"
    # Requeue never bounces outage arrivals; reject attributes them.
    assert all(t["outage_rejected"] == 0 for t in doc_rq["tenants"])
    assert sum(t["outage_rejected"] for t in doc_rj["tenants"]) > 0
    # Rejected arrivals skip the queue, so reject serves no more ops
    # than requeue and both verdicts stay clean.
    assert doc_rj["ops"] <= doc_rq["ops"]
    assert requeue.recovery[0]["oracle"]["clean"]
    assert reject.recovery[0]["oracle"]["clean"]


def test_outage_attributed_slo_violations():
    # Requeue makes arrivals wait out the outage: ops overlapping the
    # window blow their SLO and must be attributed to it.
    result = _serve("bytefs", "fifo", DeviceCrash(0, at_s=0.002))
    doc = result.to_json()
    rec = result.recovery[0]
    outage = sum(t["slo_violations_outage"] for t in doc["tenants"])
    assert outage > 0
    assert rec["virtual_ns"] > 0
    _assert_ledger(doc)


def test_recovery_spans_land_in_trace():
    result = _serve("bytefs", "drr", DeviceCrash(0, at_s=0.002),
                    traced=True)
    tracer = result.trace
    spans = [
        s for s in tracer.spans
        if s.layer == "cluster" and s.op == "recovery"
    ]
    assert len(spans) == 1
    rec = result.recovery[0]
    assert spans[0].t_start == rec["t_down_ns"]
    assert spans[0].t_end == rec["t_up_ns"]
    crashes = [
        e for e in tracer.events
        if e.layer == "cluster" and e.name == "crash"
    ]
    assert len(crashes) == 1
    assert crashes[0].t == rec["t_down_ns"]
    # The lost op's root span is closed as "crashed", not left dangling.
    if sum(t.lost_to_crash for t in result.tenants):
        assert any(
            s.op == "crashed" for s in tracer.spans if s.layer == "cluster"
        )
    assert all(s.t_end is not None for s in tracer.spans)


# ---------------------------------------------------------------------- #
# property-based sweep over seeds and triggers (hypothesis)
# ---------------------------------------------------------------------- #

if HAVE_HYPOTHESIS:

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        after_ops=st.integers(min_value=0, max_value=24),
        sched=st.sampled_from(SCHEDS),
        torn=st.booleans(),
    )
    def test_property_any_crash_point_recovers_clean(
        seed, after_ops, sched, torn
    ):
        crash = DeviceCrash(0, after_ops=after_ops, torn=torn)
        result = _serve("bytefs", sched, crash, seed=seed)
        doc = result.to_json()
        assert validate_cluster_run(doc) == []
        rec = result.recovery[0]
        assert rec["oracle"]["clean"], rec["oracle"]["errors"]
        _assert_ledger(doc)


# ---------------------------------------------------------------------- #
# mutation check: a planted recovery bug must turn a matrix cell red
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("fs,sched", [("ext4", "fifo"), ("bytefs", "drr")])
def test_matrix_catches_planted_recovery_bug(fs, sched, monkeypatch):
    from repro.fs.extfs import ExtFS

    real_remount = ExtFS.remount

    def buggy_remount(self):
        # The planted bug: recovery "succeeds" but scribbles over the
        # head of a durably-synced tenant file — exactly the class of
        # lost-durable-data bug the oracle exists to catch.
        out = real_remount(self)
        victim = "/tn-a/data/f0"
        if self.exists(victim):
            fd = self.open(victim, O_RDWR)
            self.pwrite(fd, 0, b"\x81" * 64)
            self.close(fd)
        return out

    monkeypatch.setattr(ExtFS, "remount", buggy_remount)
    result = _serve(fs, sched, DeviceCrash(0, after_ops=9))
    rec = result.recovery[0]
    assert not rec["oracle"]["clean"]
    assert "a" in rec["oracle"]["errors"]
    assert any(
        "durable" in e or "match neither" in e
        for e in rec["oracle"]["errors"]["a"]
    )
    # The document is still schema-valid — red verdicts are data, not
    # crashes — and clean=False must be reflected there too.
    doc = result.to_json()
    assert validate_cluster_run(doc) == []
    assert doc["recovery"][0]["oracle"]["clean"] is False


# ---------------------------------------------------------------------- #
# fault-plan parsing and validation
# ---------------------------------------------------------------------- #

def test_parse_fault_round_trips():
    f = parse_fault("crash:dev1@t=0.5")
    assert f == DeviceCrash(1, at_s=0.5)
    assert f.describe() == "crash:dev1@t=0.5"
    g = parse_fault("crash:dev0@ops=40+torn")
    assert g == DeviceCrash(0, after_ops=40, torn=True)
    assert g.describe() == "crash:dev0@ops=40+torn"
    assert parse_fault(g.describe()) == g


@pytest.mark.parametrize("bad", [
    "crash:dev@t=0.5", "crash:dev1", "crash:dev1@t=", "dev1@t=0.5",
    "crash:dev1@ops=1.5", "crash:dev1@t=0.5+torn+torn",
])
def test_parse_fault_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_fault(bad)


def test_device_crash_validates():
    with pytest.raises(ValueError):
        DeviceCrash(0)  # no trigger
    with pytest.raises(ValueError):
        DeviceCrash(0, at_s=0.1, after_ops=5)  # both triggers
    with pytest.raises(ValueError):
        check_fault_plan([DeviceCrash(2, at_s=0.1)], n_devices=2)
    with pytest.raises(ValueError):
        check_fault_plan(
            [DeviceCrash(0, at_s=0.1), DeviceCrash(0, after_ops=3)],
            n_devices=1,
        )


def test_serve_rejects_unmirrorable_workload_on_faulted_device():
    tenants = [TenantSpec(name="v", workload="varmail", n_ops=4, device=0)]
    with pytest.raises(ValueError, match="oracle"):
        serve_cluster(
            tenants, fs_name="bytefs", geometry=SMALL_GEOMETRY,
            faults=[DeviceCrash(0, at_s=0.001)],
        )
    # The same workload is fine when no fault targets its device.
    result = serve_cluster(
        tenants, fs_name="bytefs", geometry=SMALL_GEOMETRY,
    )
    assert result.tenant("v").ops > 0


def test_serve_rejects_unknown_outage_policy():
    with pytest.raises(ValueError, match="outage policy"):
        _serve("bytefs", "fifo", None, outage_policy="panic")


# ---------------------------------------------------------------------- #
# repro.host.mmap: crash during msync, checked against the oracle
# ---------------------------------------------------------------------- #

MMAP_FS = ("bytefs", "ext4")


def _mmap_stack(fs_name):
    injector = FaultInjector()
    _clock, _stats, device, fs = build_stack(
        fs_name, geometry=SMALL_GEOMETRY, faults=injector
    )
    oracle = OracleFS()
    base = b"a" * 8192
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, base)
    fs.fsync(fd)
    oracle.observe(("create", "/m"))
    oracle.observe(("write", "/m", 0, base))
    oracle.observe(("fsync", "/m"))
    region = fs.mmap(fd)
    # Two dirty stores on different pages, 64 B-aligned so the oracle's
    # fragment-atomicity rule applies exactly.
    region.store(128, b"B" * 64)
    region.store(4096, b"C" * 64)
    oracle.observe(("write", "/m", 128, b"B" * 64))
    oracle.observe(("write", "/m", 4096, b"C" * 64))
    return injector, device, fs, region, oracle


def _count_msync_sites(fs_name) -> int:
    injector, _device, _fs, region, _oracle = _mmap_stack(fs_name)
    injector.start_count()
    region.msync()
    injector.disarm()
    return injector.n_sites


@pytest.mark.parametrize("fs_name", MMAP_FS)
def test_msync_reaches_crash_sites(fs_name):
    assert _count_msync_sites(fs_name) > 0


@pytest.mark.parametrize("fs_name", MMAP_FS)
def test_crash_during_msync_is_oracle_admissible(fs_name, request):
    n_sites = _count_msync_sites(fs_name)
    cap = request.config.getoption("--max-sites") or 8
    step = max(1, n_sites // cap)
    for site in range(0, n_sites, step):
        injector, device, fs, region, oracle = _mmap_stack(fs_name)
        injector.arm(FaultPlan(site, torn=True, seed=site))
        try:
            region.msync()
            oracle.observe(("fsync", "/m"))
        except CrashPoint:
            # msync never acked: stores stay pending, durability of the
            # pre-crash fsync image is still required.
            oracle.observe(("fsync", "/m"), completed=False)
        injector.disarm()
        device.power_fail()
        fs.crash()
        fs.remount()
        errors = oracle.check(fs)
        assert errors == [], f"{fs_name} site {site}: {errors}"


@pytest.mark.parametrize("fs_name", MMAP_FS)
def test_msync_completion_is_durable(fs_name):
    injector, device, fs, region, oracle = _mmap_stack(fs_name)
    region.msync()
    oracle.observe(("fsync", "/m"))
    region.close()
    device.power_fail()
    fs.crash()
    fs.remount()
    assert oracle.check(fs) == []
    fd = fs.open("/m", O_RDWR)
    assert fs.pread(fd, 128, 64) == b"B" * 64
    assert fs.pread(fd, 4096, 64) == b"C" * 64
