"""Unit tests for both firmware variants through the device interface."""

import pytest

from repro.ssd.firmware.write_log import LogFullError
from repro.stats.traffic import Direction, Interface, StructKind
from tests.conftest import make_device


# --------------------------------------------------------------------- #
# ByteFS firmware: write log, merge, transactions, cleaning, recovery
# --------------------------------------------------------------------- #


def test_byte_write_then_byte_read_from_log(bytefs_device):
    d = bytefs_device
    d.store(1000, b"hello", StructKind.INODE)
    assert d.load(1000, 5, StructKind.INODE) == b"hello"
    assert d.stats.counters["fw_byte_read_log_hits"] == 1


def test_byte_read_miss_goes_to_flash(bytefs_device):
    d = bytefs_device
    d.write_blocks(3, b"Z" * 4096, StructKind.DATA)
    d.firmware.force_clean()
    data = d.load(3 * 4096 + 10, 4, StructKind.DATA)
    assert data == b"ZZZZ"
    assert d.stats.counters["fw_byte_read_flash_misses"] >= 1


def test_block_read_merges_logged_chunks(bytefs_device):
    d = bytefs_device
    d.write_blocks(2, b"A" * 4096, StructKind.DATA)
    d.store(2 * 4096 + 100, b"BBB", StructKind.DATA)
    page = d.read_blocks(2, 1, StructKind.DATA)
    assert page[99:104] == b"ABBBA"
    assert d.stats.counters["fw_block_read_merges"] >= 1


def test_block_write_invalidates_log_entries(bytefs_device):
    d = bytefs_device
    d.store(5 * 4096, b"old!", StructKind.DATA)
    d.write_blocks(5, b"N" * 4096, StructKind.DATA)
    assert d.read_blocks(5, 1, StructKind.DATA)[:4] == b"NNNN"
    assert d.stats.counters["fw_log_invalidations"] >= 1


def test_uncommitted_tx_discarded_on_recover(bytefs_device):
    d = bytefs_device
    d.store(0, b"committed", StructKind.INODE, txid=1)
    d.store(64, b"uncommitted", StructKind.INODE, txid=2)
    d.commit(1)
    d.power_fail()
    result = d.recover()
    assert result["discarded_entries"] >= 1
    assert d.read_blocks(0, 1, StructKind.INODE)[:9] == b"committed"
    assert d.read_blocks(0, 1, StructKind.INODE)[64:75] == bytes(11)


def test_non_transactional_writes_survive_recovery(bytefs_device):
    d = bytefs_device
    d.store(128, b"durable", StructKind.BITMAP)
    d.power_fail()
    d.recover()
    assert d.read_blocks(0, 1, StructKind.BITMAP)[128:135] == b"durable"


def test_commit_ordering_newest_wins(bytefs_device):
    d = bytefs_device
    d.store(0, b"v1", StructKind.DATA, txid=1)
    d.store(0, b"v2", StructKind.DATA, txid=2)
    d.commit(1)
    d.commit(2)
    d.recover()
    assert d.read_blocks(0, 1, StructKind.DATA)[:2] == b"v2"


def test_log_cleaning_triggers_and_preserves_data():
    d = make_device("bytefs")
    # Write far more than the log can hold to force cleanings.
    log_cap = d.firmware.config.log_bytes
    n = (log_cap // 64) * 2
    for i in range(n):
        addr = (i % 500) * 64
        d.store(addr, bytes([i % 256]) * 64, StructKind.DATA)
    assert d.firmware.cleanings > 0
    # Latest values are readable after everything settles.
    d.firmware.force_clean()
    last_writer = {}
    for i in range(n):
        last_writer[(i % 500) * 64] = i % 256
    for addr, val in list(last_writer.items())[:20]:
        assert d.load(addr, 64, StructKind.DATA) == bytes([val]) * 64


def test_oversized_byte_write_rejected():
    d = make_device("bytefs")
    with pytest.raises(ValueError):
        d.firmware.byte_write(0, 4000, bytes(200))  # crosses page boundary


def test_index_memory_reported():
    d = make_device("bytefs")
    d.store(0, b"x" * 64, StructKind.DATA)
    assert d.firmware.index_memory_bytes() > 0


# --------------------------------------------------------------------- #
# Baseline firmware: page cache semantics
# --------------------------------------------------------------------- #


def test_baseline_byte_rmw(baseline_device):
    d = baseline_device
    d.write_blocks(1, b"A" * 4096, StructKind.DATA)
    d.store(1 * 4096 + 5, b"bb", StructKind.DATA)
    assert d.load(1 * 4096 + 4, 4, StructKind.DATA) == b"Abba".replace(
        b"a", b"A"
    ) or d.load(1 * 4096 + 4, 4, StructKind.DATA) == b"AbbA"


def test_baseline_cache_hit_counting(baseline_device):
    d = baseline_device
    d.store(0, b"x", StructKind.DATA)
    d.load(0, 1, StructKind.DATA)
    assert d.stats.counters["devcache_hits"] >= 1


def test_baseline_dirty_pages_survive_power_loss(baseline_device):
    d = baseline_device
    d.store(100, b"battery", StructKind.DATA)
    d.power_fail()
    d.recover()
    assert d.read_blocks(0, 1, StructKind.DATA)[100:107] == b"battery"


def test_baseline_block_write_goes_to_flash(baseline_device):
    d = baseline_device
    before = d.stats.flash_bytes(direction=Direction.WRITE)
    d.write_blocks(0, b"Q" * 4096, StructKind.DATA)
    assert d.stats.flash_bytes(direction=Direction.WRITE) == before + 4096


def test_baseline_no_transactions(baseline_device):
    with pytest.raises(NotImplementedError):
        baseline_device.commit(1)


# --------------------------------------------------------------------- #
# device-level accounting and addressing
# --------------------------------------------------------------------- #


def test_traffic_tagged_by_interface(bytefs_device):
    d = bytefs_device
    d.store(0, b"x" * 64, StructKind.INODE)
    d.write_blocks(1, b"y" * 4096, StructKind.DATA)
    st = d.stats
    assert st.host_ssd_bytes(interface=Interface.BYTE, direction=Direction.WRITE) == 64
    assert st.host_ssd_bytes(interface=Interface.BLOCK, direction=Direction.WRITE) == 4096


def test_byte_write_crossing_page_boundary_split(bytefs_device):
    d = bytefs_device
    addr = 4096 - 32
    d.store(addr, b"Q" * 64, StructKind.DATA)
    assert d.load(addr, 64, StructKind.DATA) == b"Q" * 64


def test_out_of_range_access_rejected(bytefs_device):
    d = bytefs_device
    with pytest.raises(ValueError):
        d.load(d.capacity_bytes, 1, StructKind.DATA)
    with pytest.raises(ValueError):
        d.write_blocks(d.capacity_blocks, b"x" * 4096, StructKind.DATA)


def test_unaligned_block_write_rejected(bytefs_device):
    with pytest.raises(ValueError):
        bytefs_device.write_blocks(0, b"xyz", StructKind.DATA)


def test_overprovisioning_hides_capacity(bytefs_device):
    geo = bytefs_device.geometry
    assert bytefs_device.capacity_blocks < geo.total_pages
