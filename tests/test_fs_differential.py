"""Differential testing: every file system vs. the fault oracle.

Random operation sequences (seeded through :func:`repro.sim.rng.make_rng`,
so a failure reproduces from its seed alone) run against each simulated
file system while being mirrored into :class:`repro.faults.OracleFS`.
The oracle's *volatile* view (``files``/``dirs``/``content``) is the
reference model; the visible state of the real file system must match it
exactly at checkpoints, and again after ``sync`` + remount.

This complements ``test_fs_model_based.py`` (hypothesis vs. a flat dict):
here the reference is the same oracle that judges crash sweeps — if the
oracle mis-models normal operation, this test fails before a sweep can
mis-judge a crash — and the sequences include directory operations.
"""

from __future__ import annotations

import pytest

from repro.faults import OracleFS
from repro.faults.sweep import apply_op
from repro.fs.vfs import O_RDONLY
from repro.sim.rng import make_rng
from tests.conftest import ALL_FS_AND_VARIANTS, make_stack

DIRS = ["/da", "/db", "/da/sub"]
FILES = [f"{d}/f{i}" for d in ("", "/da", "/db", "/da/sub") for i in range(2)]

N_OPS = 110
CHECK_EVERY = 20


def generate_ops(seed: int, n_ops: int = N_OPS):
    """A random but always-valid op sequence for one run."""
    rng = make_rng(seed, "difftest:ops")
    dirs = set()
    files = set()
    ops = []
    for _ in range(n_ops):
        kind = rng.choices(
            ["mkdir", "create", "write", "trunc", "fsync", "fdatasync",
             "sync", "unlink", "rename"],
            weights=[4, 10, 30, 8, 10, 4, 3, 6, 6],
        )[0]
        if kind == "mkdir":
            avail = [d for d in DIRS if d not in dirs
                     and (d.rsplit("/", 1)[0] or "/") in dirs | {"/"}]
            if not avail:
                continue
            d = rng.choice(avail)
            dirs.add(d)
            ops.append(("mkdir", d))
        elif kind == "create":
            avail = [f for f in FILES
                     if (f.rsplit("/", 1)[0] or "/") in dirs | {"/"}]
            if not avail:
                continue
            path = rng.choice(avail)
            files.add(path)
            ops.append(("create", path))
        elif kind in ("write", "trunc", "fsync", "fdatasync", "unlink"):
            if not files:
                continue
            path = rng.choice(sorted(files))
            if kind == "write":
                off = rng.randrange(0, 6000)
                data = bytes([rng.randrange(1, 256)]) * rng.randrange(1, 2500)
                ops.append(("write", path, off, data))
            elif kind == "trunc":
                ops.append(("trunc", path, rng.randrange(0, 9000)))
            elif kind == "unlink":
                files.discard(path)
                ops.append(("unlink", path))
            else:
                ops.append((kind, path))
        elif kind == "sync":
            ops.append(("sync",))
        else:  # rename: file -> fresh or existing file path, valid parent
            if not files:
                continue
            src = rng.choice(sorted(files))
            targets = [f for f in FILES if f != src
                       and (f.rsplit("/", 1)[0] or "/") in dirs | {"/"}]
            if not targets:
                continue
            dst = rng.choice(targets)
            files.discard(src)
            files.add(dst)
            ops.append(("rename", src, dst))
    return ops


def read_back(fs):
    """Walk the FS and return (files: path->bytes, dirs: set of paths)."""
    got_files = {}
    got_dirs = set()
    stack = ["/"]
    while stack:
        d = stack.pop()
        for name in fs.listdir(d):
            child = f"{d.rstrip('/')}/{name}"
            if fs.stat(child).is_dir:
                got_dirs.add(child)
                stack.append(child)
            else:
                size = fs.stat(child).size
                fd = fs.open(child, O_RDONLY)
                got_files[child] = fs.pread(fd, 0, size + 1)
                fs.close(fd)
    return got_files, got_dirs


def assert_same_state(fs, oracle: OracleFS, where: str) -> None:
    got_files, got_dirs = read_back(fs)
    want_dirs = oracle.dirs - {"/"}  # the walk starts below the root
    assert got_dirs == want_dirs, (
        f"{where}: directory sets differ "
        f"(missing={sorted(want_dirs - got_dirs)}, "
        f"extra={sorted(got_dirs - want_dirs)})"
    )
    want_files = oracle.files
    assert set(got_files) == set(want_files), (
        f"{where}: file sets differ "
        f"(missing={sorted(set(want_files) - set(got_files))}, "
        f"extra={sorted(set(got_files) - set(want_files))})"
    )
    for path in sorted(want_files):
        assert got_files[path] == want_files[path], (
            f"{where}: {path} content mismatch "
            f"(got {len(got_files[path])} B, "
            f"want {len(want_files[path])} B)"
        )


@pytest.mark.parametrize("fs_name", ALL_FS_AND_VARIANTS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fs_matches_oracle(fs_name, seed):
    ops = generate_ops(seed)
    _clk, _stats, _dev, fs = make_stack(fs_name)
    oracle = OracleFS()
    for i, op in enumerate(ops):
        try:
            apply_op(fs, op)
        except Exception as exc:
            raise AssertionError(
                f"[{fs_name} seed={seed}] op {i} {op!r} raised {exc!r}"
            ) from exc
        oracle.observe(op, completed=True)
        if (i + 1) % CHECK_EVERY == 0:
            assert_same_state(
                fs, oracle, f"[{fs_name} seed={seed}] after op {i}"
            )
    assert_same_state(fs, oracle, f"[{fs_name} seed={seed}] final")


@pytest.mark.parametrize("fs_name", ALL_FS_AND_VARIANTS)
def test_fs_matches_oracle_after_remount(fs_name):
    """sync() makes everything durable: remount must reproduce the view."""
    ops = generate_ops(seed=3)
    _clk, _stats, _dev, fs = make_stack(fs_name)
    oracle = OracleFS()
    for op in ops:
        apply_op(fs, op)
        oracle.observe(op, completed=True)
    apply_op(fs, ("sync",))
    oracle.observe(("sync",), completed=True)
    fs.remount()
    assert_same_state(fs, oracle, f"[{fs_name}] after sync+remount")


def test_generate_ops_deterministic():
    assert generate_ops(5) == generate_ops(5)
    assert generate_ops(5) != generate_ops(6)
