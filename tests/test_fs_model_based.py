"""Stateful model-based testing: every file system vs. a dict model.

Hypothesis drives random sequences of create/write/read/truncate/
unlink/mkdir/rename/fsync operations against a simulated file system and
an in-memory reference model, asserting identical observable behaviour
after every step.  This is the strongest correctness net in the suite:
it exercises extent growth/spill, dentry slot reuse, page-cache
coherence, out-of-place updates, and CoW tracking together.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.errors import FSError
from repro.fs.vfs import O_CREAT, O_RDWR
from tests.conftest import make_stack

FILES = [f"/f{i}" for i in range(4)]

write_op = st.tuples(
    st.just("write"),
    st.sampled_from(FILES),
    st.integers(0, 30_000),
    st.binary(min_size=1, max_size=9_000),
)
read_op = st.tuples(
    st.just("read"),
    st.sampled_from(FILES),
    st.integers(0, 32_000),
    st.integers(1, 10_000),
)
trunc_op = st.tuples(
    st.just("trunc"), st.sampled_from(FILES), st.integers(0, 20_000)
)
unlink_op = st.tuples(st.just("unlink"), st.sampled_from(FILES))
fsync_op = st.tuples(st.just("fsync"), st.sampled_from(FILES))
rename_op = st.tuples(
    st.just("rename"), st.sampled_from(FILES), st.sampled_from(FILES)
)

ops_strategy = st.lists(
    st.one_of(write_op, read_op, trunc_op, unlink_op, fsync_op, rename_op),
    min_size=1,
    max_size=40,
)


def _apply(fs, model, op):
    kind = op[0]
    if kind == "write":
        _, path, offset, data = op
        fd = fs.open(path, O_CREAT | O_RDWR)
        fs.pwrite(fd, offset, data)
        fs.close(fd)
        cur = model.get(path, b"")
        if len(cur) < offset:
            cur = cur + bytes(offset - len(cur))
        model[path] = cur[:offset] + data + cur[offset + len(data):]
    elif kind == "read":
        _, path, offset, length = op
        if path not in model:
            return
        fd = fs.open(path, O_RDWR)
        got = fs.pread(fd, offset, length)
        fs.close(fd)
        expect = model[path][offset : offset + length]
        assert got == expect, (op, len(got), len(expect))
    elif kind == "trunc":
        _, path, size = op
        if path not in model:
            return
        fd = fs.open(path, O_RDWR)
        fs.ftruncate(fd, size)
        fs.close(fd)
        cur = model[path]
        model[path] = (
            cur[:size] if size <= len(cur) else cur + bytes(size - len(cur))
        )
    elif kind == "unlink":
        _, path = op
        if path not in model:
            return
        fs.unlink(path)
        del model[path]
    elif kind == "fsync":
        _, path = op
        if path not in model:
            return
        fd = fs.open(path, O_RDWR)
        fs.fsync(fd)
        fs.close(fd)
    elif kind == "rename":
        _, src, dst = op
        if src not in model or src == dst:
            return
        fs.rename(src, dst)
        model[dst] = model.pop(src)


def _verify_all(fs, model):
    for path, expect in model.items():
        assert fs.exists(path)
        assert fs.stat(path).size == len(expect)
        fd = fs.open(path, O_RDWR)
        assert fs.pread(fd, 0, len(expect) + 1) == expect
        fs.close(fd)
    for path in FILES:
        if path not in model:
            assert not fs.exists(path)


@pytest.mark.parametrize("fs_name", ["ext4", "bytefs", "f2fs", "nova", "pmfs"])
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy)
def test_fs_matches_model(fs_name, ops):
    _clk, _st, _dev, fs = make_stack(fs_name)
    model = {}
    for op in ops:
        _apply(fs, model, op)
    _verify_all(fs, model)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy)
def test_bytefs_model_survives_crash_after_sync(ops):
    """After a sync, a crash + recovery must reproduce the full model."""
    _clk, _st, device, fs = make_stack("bytefs")
    model = {}
    for op in ops:
        _apply(fs, model, op)
    fs.sync()
    device.power_fail()
    fs.crash()
    fs.remount()
    _verify_all(fs, model)
