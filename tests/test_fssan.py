"""FSSan runtime sanitizer: off-by-default, exercised, and trippable.

One trip test per invariant class proves each contract is live (a check
that can never fail is documentation, not a sanitizer), and the workload
test proves real runs actually reach every class.
"""

from __future__ import annotations

import pytest

from repro.analysis import fssan
from repro.bench.harness import run_workload
from repro.ftl.mapping import PageMap
from repro.sim.clock import VirtualClock
from repro.sim.resources import Resource
from repro.ssd.firmware.log_index import ChunkEntry, LogIndex
from repro.ssd.firmware.skiplist import SkipList
from repro.ssd.firmware.txlog import TxLog
from repro.workloads import MicroCreate
from tests.conftest import SMALL_GEOMETRY


@pytest.fixture(autouse=True)
def _sanitizer_state():
    """Restore the global switch and counters around every test."""
    prev = fssan.ENABLED
    fssan.reset_counts()
    yield
    fssan.ENABLED = prev
    fssan.reset_counts()


def _chunk(offset: int, length: int, seq: int = 0) -> ChunkEntry:
    return ChunkEntry(
        offset=offset, length=length, log_off=0, txid=None, seq=seq,
        data=b"x" * length,
    )


# ---------------------------------------------------------------------- #
# off by default
# ---------------------------------------------------------------------- #

def test_checks_are_noops_when_disabled():
    fssan.disable()
    pm = PageMap()
    pm.bind(1, 50)
    pm.bind(2, 50)          # steals PPA 50: would trip when enabled
    log = TxLog()
    log.commit(1)
    log._order.append(99)   # corrupt: order/positions diverge
    log.commit(2)
    Resource("r").serve(0.0, -5.0)
    assert fssan.COUNTS == {}


def test_sanitized_context_restores_previous_state():
    fssan.disable()
    with fssan.sanitized():
        assert fssan.ENABLED
        with fssan.sanitized():
            assert fssan.ENABLED
        assert fssan.ENABLED
    assert not fssan.ENABLED


# ---------------------------------------------------------------------- #
# one trip test per invariant class
# ---------------------------------------------------------------------- #

def test_trip_log_chunk_outside_page():
    index = LogIndex(capacity_bytes=1 << 20, page_size=4096)
    with fssan.sanitized():
        index.insert(3, _chunk(offset=0, length=64))  # fine
        with pytest.raises(fssan.SanitizerError) as exc:
            index.insert(3, _chunk(offset=4000, length=200, seq=1))
    assert exc.value.invariant == fssan.LOG


def test_trip_log_chunk_negative_lpa():
    index = LogIndex(capacity_bytes=1 << 20, page_size=4096)
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError) as exc:
            index.insert(-4, _chunk(offset=0, length=64))
    assert exc.value.invariant == fssan.LOG


def test_trip_skiplist_corrupted_order():
    sl = SkipList()
    for k in range(8):
        sl.insert(k, str(k))
    sl._head.forward[0].key = 1000  # corrupt: level 0 no longer sorted
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError) as exc:
            sl.insert(20, "x")
    assert exc.value.invariant == fssan.SKIP


def test_trip_ftl_double_bind_steals_live_page():
    pm = PageMap()
    with fssan.sanitized():
        pm.bind(1, 50)
        with pytest.raises(fssan.SanitizerError) as exc:
            pm.bind(2, 50)  # PPA 50 still live under LPA 1
    assert exc.value.invariant == fssan.FTL


def test_trip_txlog_order_positions_diverge():
    log = TxLog()
    with fssan.sanitized():
        log.commit(1)
        log._order.append(99)  # corrupt behind the position map's back
        with pytest.raises(fssan.SanitizerError) as exc:
            log.commit(2)
    assert exc.value.invariant == fssan.TX


def test_trip_resource_negative_duration():
    res = Resource("flash-ch0")
    with fssan.sanitized():
        res.serve(0.0, 10.0)
        with pytest.raises(fssan.SanitizerError) as exc:
            res.serve(0.0, -5.0)
    assert exc.value.invariant == fssan.CLOCK


def test_trip_clock_advance_to_nan():
    clock = VirtualClock(1)
    with fssan.sanitized():
        clock.advance(10.0)
        with pytest.raises(fssan.SanitizerError) as exc:
            clock.advance_to(float("nan"))
    assert exc.value.invariant == fssan.CLOCK


# ---------------------------------------------------------------------- #
# the contracts are exercised by a real run
# ---------------------------------------------------------------------- #

def test_bytefs_workload_exercises_all_invariant_classes():
    """A small ByteFS run must pass through every FSSAN class at least
    once — otherwise the sanitizer silently stopped covering a layer.

    FSSAN-QUEUE lives in the serving layer, so a small cluster run rides
    along with the single-tenant workload."""
    from repro.cluster import default_tenants, serve_cluster

    with fssan.sanitized():
        run_workload(
            "bytefs",
            MicroCreate(n_files=32, n_threads=2),
            geometry=SMALL_GEOMETRY,
            unmount=True,
        )
        serve_cluster(
            default_tenants(2, n_ops=8),
            geometry=SMALL_GEOMETRY,
        )
    missing = [c for c in fssan.ALL_CLASSES if fssan.COUNTS.get(c, 0) == 0]
    assert not missing, f"invariant classes never checked: {missing}"


def test_queue_accounting_balances():
    with fssan.sanitized():
        fssan.check_queue_accounting("t", 10, 5, 2, 2, 1)
    assert fssan.COUNTS.get(fssan.QUEUE, 0) >= 1


def test_queue_accounting_trips_on_imbalance():
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError) as exc:
            fssan.check_queue_accounting("t", 10, 5, 2, 2, 0)
    assert exc.value.invariant == fssan.QUEUE


def test_queue_accounting_trips_on_negative_counter():
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError):
            fssan.check_queue_accounting("t", 4, 5, -1, 0, 0)


def test_queue_accounting_balances_with_lost_to_crash():
    # 10 submitted = 5 served + 2 pending + 1 rejected + 1 dropped
    # + 1 lost to a device crash: the one legitimate disappearance.
    with fssan.sanitized():
        fssan.check_queue_accounting("t", 10, 5, 2, 1, 1, lost_to_crash=1)
    assert fssan.COUNTS.get(fssan.QUEUE, 0) >= 1


def test_queue_accounting_trips_when_crash_losses_unaccounted():
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError) as exc:
            fssan.check_queue_accounting("t", 10, 5, 2, 1, 1)
    assert exc.value.invariant == fssan.QUEUE
    assert "lost_to_crash" in str(exc.value)


def test_queue_accounting_trips_on_negative_lost_to_crash():
    with fssan.sanitized():
        with pytest.raises(fssan.SanitizerError):
            fssan.check_queue_accounting("t", 4, 4, 0, 0, 0,
                                         lost_to_crash=-1)


def test_counts_attribute_checks_to_the_right_class():
    pm = PageMap()
    with fssan.sanitized():
        pm.bind(1, 50)
    assert fssan.COUNTS.get(fssan.FTL, 0) >= 1
    assert fssan.COUNTS.get(fssan.TX, 0) == 0
