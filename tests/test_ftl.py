"""Unit tests for the FTL: mapping, write buffer, garbage collection."""

import pytest

from repro.ftl.ftl import FTL, FTLConfig
from repro.ftl.mapping import PageMap
from repro.nand.chip import FlashArray
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import ChannelArray
from repro.stats.traffic import Direction, StructKind, TrafficStats


def make_ftl(blocks_per_way=8, pages_per_block=8, channels=2):
    geo = FlashGeometry(
        n_channels=channels,
        ways_per_channel=1,
        blocks_per_way=blocks_per_way,
        pages_per_block=pages_per_block,
        page_size=512,
    )
    clock = VirtualClock(1)
    stats = TrafficStats()
    ftl = FTL(
        geo,
        FlashArray(geo),
        ChannelArray(channels),
        TimingModel(),
        clock,
        stats,
        FTLConfig(write_buffer_pages=4),
    )
    return ftl, clock, stats


def test_pagemap_bind_and_reverse():
    pm = PageMap()
    assert pm.bind(10, 100) is None
    assert pm.lookup(10) == 100
    assert pm.reverse(100) == 10
    assert pm.bind(10, 200) == 100
    assert pm.reverse(100) is None
    assert pm.unbind(10) == 200
    assert 10 not in pm


def test_write_then_read_roundtrip():
    ftl, _clock, _stats = make_ftl()
    ftl.write_page(3, b"abc", StructKind.DATA)
    assert ftl.read_page(3)[:3] == b"abc"


def test_unwritten_page_reads_zero_without_flash_op():
    ftl, clock, _stats = make_ftl()
    t0 = clock.now
    data = ftl.read_page(42)
    assert data == bytes(512)
    assert clock.now == t0  # no flash access for unmapped pages


def test_overwrite_is_out_of_place():
    ftl, _clock, _stats = make_ftl()
    ftl.write_page(1, b"v1", StructKind.DATA)
    ppa1 = ftl.page_map.lookup(1)
    ftl.write_page(1, b"v2", StructKind.DATA)
    ppa2 = ftl.page_map.lookup(1)
    assert ppa1 != ppa2
    assert ftl.read_page(1)[:2] == b"v2"


def test_writes_round_robin_channels():
    ftl, _clock, _stats = make_ftl()
    ftl.write_page(0, b"a", StructKind.DATA)
    ftl.write_page(1, b"b", StructKind.DATA)
    ch0 = ftl.geometry.channel_of(ftl.page_map.lookup(0))
    ch1 = ftl.geometry.channel_of(ftl.page_map.lookup(1))
    assert ch0 != ch1


def test_trim_unmaps():
    ftl, _clock, _stats = make_ftl()
    ftl.write_page(7, b"x", StructKind.DATA)
    ftl.trim(7)
    assert not ftl.is_mapped(7)
    assert ftl.read_page(7) == bytes(512)


def test_gc_reclaims_space_under_churn():
    ftl, _clock, stats = make_ftl(blocks_per_way=4, pages_per_block=4)
    # Total 2*4*4=32 physical pages; overwrite a small working set far
    # more times than there are pages.
    for i in range(200):
        ftl.write_page(i % 5, bytes([i % 256]) * 16, StructKind.DATA)
    assert ftl.gc_runs > 0
    for lpa in range(5):
        assert ftl.read_page(lpa)[0] == max(
            i for i in range(200) if i % 5 == lpa
        ) % 256


def test_gc_preserves_valid_data():
    ftl, _clock, _stats = make_ftl(blocks_per_way=4, pages_per_block=4)
    ftl.write_page(100, b"keepme", StructKind.DATA)
    for i in range(150):
        ftl.write_page(i % 4, b"churn", StructKind.DATA)
    assert ftl.read_page(100)[:6] == b"keepme"


def test_write_buffer_stalls_when_full():
    ftl, clock, stats = make_ftl()
    for i in range(20):
        ftl.write_page(i, b"x", StructKind.DATA)
    # 4-slot buffer with 20 writes must have stalled at least once.
    assert stats.counters.get("write_buffer_stalls", 0) > 0
    assert clock.now > 0


def test_drain_write_buffer_advances_clock():
    ftl, clock, _stats = make_ftl()
    ftl.write_page(0, b"x", StructKind.DATA)
    t = clock.now
    ftl.drain_write_buffer()
    assert clock.now >= t + 1  # waited for the program to finish


def test_flash_traffic_recorded():
    ftl, _clock, stats = make_ftl()
    ftl.write_page(0, b"x", StructKind.DATA)
    ftl.read_page(0)
    assert stats.flash_bytes(direction=Direction.WRITE) == 512
    assert stats.flash_bytes(direction=Direction.READ) == 512


def test_free_page_estimate_decreases():
    ftl, _clock, _stats = make_ftl()
    before = ftl.free_page_estimate()
    ftl.write_page(0, b"x", StructKind.DATA)
    assert ftl.free_page_estimate() < before
