"""FTL wear and GC accounting under sustained churn."""

from repro.nand.geometry import FlashGeometry
from repro.sim.clock import VirtualClock
from repro.ssd.device import MSSD, MSSDConfig
from repro.stats.traffic import StructKind, TrafficStats

TINY = FlashGeometry(
    n_channels=2, ways_per_channel=1, blocks_per_way=8,
    pages_per_block=8, page_size=512,
)


def tiny_device() -> MSSD:
    cfg = MSSDConfig(geometry=TINY, firmware="baseline")
    return MSSD(cfg, VirtualClock(1), TrafficStats())


def test_wear_spreads_across_blocks():
    device = tiny_device()
    ftl = device.ftl
    # Hammer a tiny logical working set: 600 writes vs 128 physical
    # pages forces constant GC cycling.
    for i in range(600):
        ftl.write_page(i % 4, bytes([i % 256]) * 64, StructKind.DATA)
    worn = [b for b in range(TINY.total_blocks)
            if device.flash.wear(b) > 0]
    assert len(worn) > TINY.total_blocks // 4
    assert ftl.gc_runs > 0


def test_gc_traffic_is_accounted():
    device = tiny_device()
    ftl = device.ftl
    for i in range(500):
        ftl.write_page(i % 3, b"w" * 32, StructKind.DATA)
    assert device.stats.counters.get("gc_runs", 0) > 0


def test_logical_view_stable_across_heavy_gc():
    device = tiny_device()
    ftl = device.ftl
    ftl.write_page(60, b"anchor", StructKind.DATA)
    for i in range(700):
        ftl.write_page(i % 5, bytes([i % 251]) * 16, StructKind.DATA)
    assert ftl.read_page(60)[:6] == b"anchor"


def test_wear_levelling_bounded_imbalance():
    """Greedy GC with round-robin allocation keeps wear from piling onto
    a single block."""
    device = tiny_device()
    ftl = device.ftl
    for i in range(800):
        ftl.write_page(i % 4, bytes(32), StructKind.DATA)
    wears = [device.flash.wear(b) for b in range(TINY.total_blocks)]
    assert max(wears) > 0
    worn = [w for w in wears if w > 0]
    assert len(worn) >= 8  # spread over many blocks, not hotspotted
