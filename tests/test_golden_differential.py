"""Golden differential: ``RunResult.to_json()`` pinned byte-for-byte.

The simulator hot path is performance-optimized under one non-negotiable
constraint: only *wall-clock* time may change — never simulated time,
traffic, or latency.  These tests enforce it by replaying every
(fs, figure-workload) pair at a fixed seed and comparing the canonical
JSON serialization of the run against a committed fixture, byte for
byte.  Any drift means an "optimization" changed the performance model.

The fixture is regenerated only via an explicit flag::

    PYTHONPATH=src python -m pytest tests/test_golden_differential.py \
        --update-golden

which is reserved for deliberate performance-model changes (new timing
parameters, new traffic accounting) — recalibrate on purpose, never to
make a red optimization pass.  Regeneration computes every pair twice
(once to write, once through the normal assertions), so an update run
doubles as a same-seed determinism sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_workload
from repro.cluster import TenantSpec, serve_cluster
from repro.faults import DeviceCrash
from repro.workloads import (
    Fileserver,
    MicroCreate,
    MicroDelete,
    MicroMkdir,
    MicroRmdir,
    OLTP,
    Varmail,
    Webproxy,
    Webserver,
)
from tests.conftest import ALL_FS, SMALL_GEOMETRY

GOLDEN_PATH = Path(__file__).parent / "golden" / "run_results.json"
CLUSTER_GOLDEN_PATH = Path(__file__).parent / "golden" / "cluster_run.json"

#: Every figure workload at smoke scale (fresh instance per run:
#: setup mutates workload state).  Scales mirror tests/benchmarks.
FIGURE_WORKLOADS = {
    "create": lambda: MicroCreate(n_files=96),
    "delete": lambda: MicroDelete(n_files=72),
    "mkdir": lambda: MicroMkdir(n_dirs=96),
    "rmdir": lambda: MicroRmdir(n_dirs=72),
    "varmail": lambda: Varmail(ops_per_thread=8),
    "fileserver": lambda: Fileserver(ops_per_thread=6),
    "webproxy": lambda: Webproxy(ops_per_thread=6),
    "webserver": lambda: Webserver(ops_per_thread=6),
    "oltp": lambda: OLTP(ops_per_thread=8),
}

PAIRS = [(fs, wl) for fs in ALL_FS for wl in sorted(FIGURE_WORKLOADS)]


def _canonical(fs: str, wl_name: str) -> str:
    """The byte-exact representation a run is pinned to."""
    result = run_workload(
        fs, FIGURE_WORKLOADS[wl_name](), geometry=SMALL_GEOMETRY
    )
    return json.dumps(result.to_json(), sort_keys=True)


@pytest.fixture(scope="module")
def golden(request):
    if request.config.getoption("--update-golden"):
        data = {f"{fs}/{wl}": _canonical(fs, wl) for fs, wl in PAIRS}
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(data, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing; generate it with --update-golden"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "fs,wl", PAIRS, ids=[f"{fs}-{wl}" for fs, wl in PAIRS]
)
def test_run_result_byte_identical(golden, fs, wl):
    key = f"{fs}/{wl}"
    assert key in golden, (
        f"no golden entry for {key}; regenerate with --update-golden"
    )
    assert _canonical(fs, wl) == golden[key], (
        f"{key}: RunResult.to_json() drifted from the golden fixture — "
        "a hot-path change altered simulated time/traffic/latency; "
        "only wall-clock time may change (see docs/PERFORMANCE.md)"
    )


@pytest.mark.parametrize("fs", ALL_FS)
def test_same_seed_double_run_identical(fs):
    """Two fresh same-seed runs serialize identically for every fs."""
    assert _canonical(fs, "varmail") == _canonical(fs, "varmail")


# ---------------------------------------------------------------------- #
# cluster runs: the repro.cluster.run/v2 document pinned byte-for-byte
# ---------------------------------------------------------------------- #

def _cluster_tenants():
    return [
        TenantSpec(name="a", workload="mixed", rate_ops_s=4_000.0,
                   slo_ms=5.0, n_ops=18, device=0),
        TenantSpec(name="b", workload="light", rate_ops_s=1_000.0,
                   slo_ms=2.0, n_ops=12, device=1),
        TenantSpec(name="c", workload="mixed", rate_ops_s=2_000.0,
                   slo_ms=4.0, n_ops=14, device=0),
    ]


#: Pinned cluster scenarios: a plain multi-device DRR serve, and the
#: same cluster with a mid-run crash-and-recover on device 0.
CLUSTER_SCENARIOS = {
    "drr-plain": dict(sched="drr"),
    "drr-crash-dev0": dict(sched="drr",
                           faults=[DeviceCrash(0, after_ops=9)]),
}


def _cluster_canonical(name: str) -> str:
    result = serve_cluster(
        _cluster_tenants(), fs_name="bytefs", n_devices=2, seed=42,
        geometry=SMALL_GEOMETRY, queue_depth=2, max_queue=256,
        **CLUSTER_SCENARIOS[name],
    )
    return json.dumps(result.to_json(), sort_keys=True)


@pytest.fixture(scope="module")
def cluster_golden(request):
    if request.config.getoption("--update-golden"):
        data = {name: _cluster_canonical(name) for name in CLUSTER_SCENARIOS}
        CLUSTER_GOLDEN_PATH.parent.mkdir(exist_ok=True)
        CLUSTER_GOLDEN_PATH.write_text(
            json.dumps(data, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
    if not CLUSTER_GOLDEN_PATH.exists():
        pytest.fail(
            f"{CLUSTER_GOLDEN_PATH} missing; generate it with "
            "--update-golden"
        )
    return json.loads(CLUSTER_GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(CLUSTER_SCENARIOS))
def test_cluster_run_byte_identical(cluster_golden, name):
    assert name in cluster_golden, (
        f"no golden entry for {name}; regenerate with --update-golden"
    )
    assert _cluster_canonical(name) == cluster_golden[name], (
        f"{name}: ClusterRunResult.to_json() drifted from the golden "
        "fixture — a scheduling/fault/recovery change altered the "
        "serve-path performance model; recalibrate deliberately with "
        "--update-golden, never to make a red change pass"
    )
