"""Unit, integration, and property tests for the LSM KV store."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kv.bloom import BloomFilter
from repro.kv.db import KVConfig, KVStore
from repro.kv.memtable import Memtable
from repro.kv.sstable import SSTableReader, SSTableWriter
from tests.conftest import make_stack


@pytest.fixture
def fs():
    _clk, _st, _dev, fs = make_stack("bytefs")
    return fs


# --------------------------------------------------------------------- #
# Bloom filter
# --------------------------------------------------------------------- #


def test_bloom_no_false_negatives():
    keys = [f"key{i}".encode() for i in range(500)]
    bloom = BloomFilter.build(keys)
    assert all(k in bloom for k in keys)


def test_bloom_false_positive_rate_bounded():
    keys = [f"key{i}".encode() for i in range(1000)]
    bloom = BloomFilter.build(keys, fp_rate=0.01)
    fps = sum(
        1 for i in range(1000) if f"other{i}".encode() in bloom
    )
    assert fps < 50  # 1% nominal, generous 5% bound


def test_bloom_serialization_roundtrip():
    bloom = BloomFilter.build([b"a", b"b", b"c"])
    clone = BloomFilter.from_bytes(bloom.to_bytes())
    assert b"a" in clone and b"b" in clone
    assert clone.n_bits == bloom.n_bits


# --------------------------------------------------------------------- #
# Memtable
# --------------------------------------------------------------------- #


def test_memtable_put_get_tombstone():
    mt = Memtable()
    mt.put(b"k", b"v")
    assert mt.get(b"k") == (True, b"v")
    mt.put(b"k", None)
    assert mt.get(b"k") == (True, None)
    assert mt.get(b"other") == (False, None)


def test_memtable_sorted_items():
    mt = Memtable()
    for k in [b"c", b"a", b"b"]:
        mt.put(k, k)
    assert [k for k, _ in mt.sorted_items()] == [b"a", b"b", b"c"]


def test_memtable_size_tracking():
    mt = Memtable()
    mt.put(b"key", b"value")
    s1 = mt.approximate_bytes()
    mt.put(b"key", b"much longer value")
    assert mt.approximate_bytes() > s1


# --------------------------------------------------------------------- #
# SSTable
# --------------------------------------------------------------------- #


def test_sstable_roundtrip(fs):
    items = [(f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(100)]
    SSTableWriter.write(fs, "/sst0", items)
    reader = SSTableReader(fs, "/sst0")
    assert reader.n_records == 100
    for k, v in items[::7]:
        assert reader.get(k) == (True, v)
    assert reader.get(b"k9999") == (False, None)
    assert reader.min_key == b"k0000"
    assert reader.max_key == b"k0099"


def test_sstable_tombstones(fs):
    items = [(b"alive", b"v"), (b"dead", None)]
    SSTableWriter.write(fs, "/sst1", sorted(items))
    reader = SSTableReader(fs, "/sst1")
    assert reader.get(b"dead") == (True, None)
    assert reader.get(b"alive") == (True, b"v")


def test_sstable_items_ordered(fs):
    items = sorted(
        (f"x{i:03d}".encode(), b"v") for i in range(50)
    )
    SSTableWriter.write(fs, "/sst2", items)
    reader = SSTableReader(fs, "/sst2")
    assert [k for k, _ in reader.items()] == [k for k, _ in items]


def test_sstable_empty_rejected(fs):
    with pytest.raises(ValueError):
        SSTableWriter.write(fs, "/sst3", [])


# --------------------------------------------------------------------- #
# KVStore
# --------------------------------------------------------------------- #


def test_kv_put_get_delete(fs):
    db = KVStore(fs, config=KVConfig(memtable_bytes=4 << 10))
    db.put(b"a", b"1")
    db.put(b"b", b"2")
    assert db.get(b"a") == b"1"
    db.delete(b"a")
    assert db.get(b"a") is None
    assert db.get(b"b") == b"2"


def test_kv_flush_and_read_from_sstable(fs):
    db = KVStore(fs, config=KVConfig(memtable_bytes=256))
    for i in range(100):
        db.put(f"k{i:03d}".encode(), f"v{i}".encode())
    assert db.flushes > 0
    for i in range(100):
        assert db.get(f"k{i:03d}".encode()) == f"v{i}".encode()


def test_kv_compaction_reduces_tables(fs):
    db = KVStore(
        fs,
        config=KVConfig(memtable_bytes=1 << 10, l0_compaction_trigger=3),
    )
    for i in range(300):
        db.put(f"k{i % 40:03d}".encode(), bytes(60))
    assert db.compactions > 0
    assert len(db.l0) < 3
    # newest value of an overwritten key wins across levels
    db.put(b"k000", b"NEWEST")
    assert db.get(b"k000") == b"NEWEST"


def test_kv_scan_merges_levels(fs):
    db = KVStore(fs, config=KVConfig(memtable_bytes=1 << 10))
    for i in range(60):
        db.put(f"s{i:03d}".encode(), f"{i}".encode())
    db.delete(b"s010")
    result = db.scan(b"s008", 5)
    keys = [k for k, _ in result]
    assert keys == [b"s008", b"s009", b"s011", b"s012", b"s013"]


def test_kv_crash_recovery_replays_wal(fs):
    _clk, _st, device, fs2 = make_stack("bytefs")
    db = KVStore(fs2, config=KVConfig(memtable_bytes=64 << 10))
    for i in range(30):
        db.put(f"k{i}".encode(), f"v{i}".encode())
    device.power_fail()
    fs2.crash()
    fs2.remount()
    db2 = KVStore(fs2, root="/kv2")  # fresh store to prove isolation
    db3 = object.__new__(KVStore)
    db3.fs = fs2
    db3.root = "/kv"
    db3.cfg = KVConfig()
    db3.memtable = None
    db3.l0 = []
    db3.l1 = []
    db3._next_file = 0
    db3._wal_fd = None
    db3.flushes = 0
    db3.compactions = 0
    replayed = db3.reopen_after_crash()
    assert replayed == 30
    for i in range(30):
        assert db3.get(f"k{i}".encode()) == f"v{i}".encode()


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 30),
            st.one_of(st.none(), st.binary(min_size=1, max_size=40)),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_kv_matches_dict_model(ops):
    """Property: the LSM store behaves like a dict under put/delete/get,
    across flushes and compactions."""
    _clk, _st, _dev, fs = make_stack("bytefs")
    db = KVStore(
        fs, config=KVConfig(memtable_bytes=512, l0_compaction_trigger=2)
    )
    model = {}
    for key_i, value in ops:
        key = f"key{key_i:02d}".encode()
        if value is None:
            db.delete(key)
            model.pop(key, None)
        else:
            db.put(key, value)
            model[key] = value
    for key_i in range(31):
        key = f"key{key_i:02d}".encode()
        assert db.get(key) == model.get(key)
    assert db.scan(b"key00", 100) == sorted(model.items())
