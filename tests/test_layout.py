"""Unit and property tests for on-disk serialization codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import layout
from repro.fs.layout import Extent, Inode, SuperblockLayout


def test_superblock_roundtrip():
    sb = SuperblockLayout.compute(10000, 4096)
    raw = sb.encode(4096)
    assert len(raw) == 4096
    decoded = SuperblockLayout.decode(raw)
    assert decoded == sb


def test_superblock_bad_magic():
    with pytest.raises(ValueError):
        SuperblockLayout.decode(bytes(4096))


def test_superblock_regions_do_not_overlap():
    sb = SuperblockLayout.compute(50000, 4096)
    assert 0 < sb.inode_bitmap_start
    assert sb.inode_bitmap_start + sb.inode_bitmap_blocks <= sb.block_bitmap_start
    assert sb.block_bitmap_start + sb.block_bitmap_blocks <= sb.itable_start
    assert sb.itable_start + sb.itable_blocks <= sb.journal_start
    assert sb.journal_start + sb.journal_blocks == sb.data_start
    assert sb.data_start < sb.total_blocks


def test_superblock_too_small_device():
    with pytest.raises(ValueError):
        SuperblockLayout.compute(16, 4096)


def test_inode_halves_are_64_bytes():
    inode = Inode(7, size=1234, links=2)
    assert len(inode.encode_lower()) == 64
    assert len(inode.encode_upper()) == 64
    assert len(inode.encode()) == 128


def test_inode_roundtrip_with_inline_extents():
    inode = Inode(3, mode=layout.FT_FILE, links=1, size=99999, mtime=1.5)
    inode.extents = [Extent(0, 100, 5), Extent(5, 300, 2)]
    decoded, count = Inode.decode(3, inode.encode())
    assert count == 2
    assert decoded.size == 99999
    assert decoded.mtime == 1.5
    assert decoded.extents == inode.extents


def test_inode_spilled_extent_count_reported():
    inode = Inode(3)
    inode.extents = [Extent(i, i * 10, 1) for i in range(5)]
    inode.extent_block = 77
    decoded, count = Inode.decode(3, inode.encode())
    assert count == 5
    assert decoded.extent_block == 77
    assert len(decoded.extents) == layout.INLINE_EXTENTS  # inline only


def test_extent_block_roundtrip():
    extents = [Extent(i, i * 7, i + 1) for i in range(10)]
    raw = layout.encode_extent_block(extents, 4096)
    assert layout.decode_extent_block(raw, 10) == extents


def test_dentry_roundtrip():
    rec = layout.encode_dentry(42, layout.FT_FILE, "hello.txt")
    assert len(rec) % 8 == 0
    block = rec + bytes(4096 - len(rec))
    entries = list(layout.decode_dentries(block))
    assert entries == [(0, len(rec), 42, layout.FT_FILE, "hello.txt")]


def test_dentry_tombstone_is_skippable():
    rec1 = layout.encode_dentry(1, layout.FT_FILE, "a")
    rec2 = layout.encode_dentry(2, layout.FT_FILE, "b")
    block = bytearray(rec1 + rec2 + bytes(4096 - len(rec1) - len(rec2)))
    block[0:4] = b"\x00\x00\x00\x00"  # tombstone rec1
    entries = list(layout.decode_dentries(bytes(block)))
    assert len(entries) == 2
    assert entries[0][2] == 0            # tombstone visible as ino 0
    assert entries[1][2:] == (2, layout.FT_FILE, "b")


def test_dentry_name_length_limits():
    with pytest.raises(ValueError):
        layout.encode_dentry(1, layout.FT_FILE, "")
    with pytest.raises(ValueError):
        layout.encode_dentry(1, layout.FT_FILE, "x" * 300)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 2**31), st.integers(0, 2**40), st.integers(1, 2**16),
    st.floats(0, 1e12), st.integers(0, 2**15),
)
def test_inode_lower_roundtrip_property(ino, size, links, mtime, flags):
    inode = Inode(ino, size=size, links=links % 65536, mtime=mtime,
                  flags=flags)
    decoded = Inode(ino)
    decoded.decode_lower(inode.encode_lower())
    assert decoded.size == size
    assert decoded.links == links % 65536
    assert decoded.mtime == mtime


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=100),
       st.integers(1, 2**31 - 1))
def test_dentry_roundtrip_property(name, ino):
    rec = layout.encode_dentry(ino, layout.FT_DIR, name)
    block = rec + bytes(512)
    (_, _, dec_ino, dec_type, dec_name), = list(
        layout.decode_dentries(block)
    )
    assert (dec_ino, dec_type, dec_name) == (ino, layout.FT_DIR, name)
