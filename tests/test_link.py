"""Unit tests for the PCIe/CXL link model."""

from repro.interconnect.link import HostLink
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock


def make_link(timing=None):
    clock = VirtualClock(1)
    return HostLink(clock, timing or TimingModel()), clock


def test_mmio_read_single_line_costs_full_latency():
    link, clock = make_link()
    link.mmio_read(64)
    assert clock.now == 4800


def test_mmio_read_bulk_overlaps_with_mlp():
    link, clock = make_link()
    link.mmio_read(64 * 16)  # 16 lines, MLP 8 -> 2 rounds
    assert clock.now < 16 * 4800
    assert clock.now >= 2 * 4800


def test_mmio_write_posted_is_cheap():
    link, clock = make_link()
    link.mmio_write(64)
    assert clock.now == 600


def test_persist_barrier_costs_roundtrip():
    link, clock = make_link()
    link.mmio_write(64)
    t = clock.now
    link.persist_barrier(1)
    assert clock.now >= t + 4800


def test_dma_includes_command_overhead_and_bandwidth():
    link, clock = make_link()
    link.dma(4096, write=True)
    assert clock.now >= 3000 + 4096 / 2.5
    # second transfer queues behind the first
    t = clock.now
    link.dma(4096, write=True)
    assert clock.now >= t


def test_cxl_reads_much_faster():
    link_pcie, clock_pcie = make_link()
    link_cxl, clock_cxl = make_link(TimingModel().as_cxl())
    link_pcie.mmio_read(4096)
    link_cxl.mmio_read(4096)
    assert clock_cxl.now < clock_pcie.now / 10


def test_reset_clears_counters():
    link, _clock = make_link()
    link.mmio_read(64)
    link.dma(100, write=False)
    link.reset()
    assert link.mmio_reads == 0
    assert link.dma_transfers == 0
