"""AST lint passes: every rule fires on a seeded fixture, suppressions
work, and the real tree lints clean.

Fixtures are laid out under ``tmp_path/repro/...`` because the passes
derive dotted module names from the last ``repro`` path component —
layer membership (CS001/LAY001) and exemptions hang off that name.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.findings import RULES
from repro.analysis.linter import lint_paths, module_name_for
from repro.cli import main


def _lint(tmp_path: Path, relpath: str, source: str, rules=()):
    f = tmp_path / relpath
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], rules)


def _rule_ids(result):
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------- #
# module naming
# ---------------------------------------------------------------------- #

def test_module_name_from_path():
    assert module_name_for(Path("src/repro/fs/vfs.py")) == "repro.fs.vfs"
    assert module_name_for(Path("src/repro/fs/__init__.py")) == "repro.fs"
    assert module_name_for(Path("/x/repro/sim/clock.py")) == "repro.sim.clock"
    assert module_name_for(Path("scratch.py")) == "scratch"


# ---------------------------------------------------------------------- #
# DET001 — wall clock
# ---------------------------------------------------------------------- #

def test_det001_flags_wall_clock(tmp_path):
    res = _lint(tmp_path, "repro/bench/t.py", """\
        import time
        from datetime import datetime

        def stamp():
            a = time.time()
            b = datetime.now()
            return a, b
    """)
    assert _rule_ids(res) == ["DET001", "DET001"]
    assert res.exit_code == 1


def test_det001_allows_sim_clock_module(tmp_path):
    res = _lint(tmp_path, "repro/sim/clock.py", """\
        import time

        def now():
            return time.time()
    """)
    assert _rule_ids(res) == []


def test_det001_blessed_clock_consumer_covers_trace_package(tmp_path):
    """repro.trace is registered as a clock consumer: the whole package
    (submodules included) is exempt without per-site suppressions."""
    res = _lint(tmp_path, "repro/trace/probe.py", """\
        import time

        def stamp():
            return time.time()
    """)
    assert _rule_ids(res) == []


def test_det001_consumer_prefix_does_not_leak_to_siblings(tmp_path):
    """Only the registered package is blessed — a sibling module whose
    name merely starts with the same characters still gets flagged."""
    res = _lint(tmp_path, "repro/tracery.py", """\
        import time

        def stamp():
            return time.time()
    """)
    assert _rule_ids(res) == ["DET001"]


def test_det001_resolves_import_aliases(tmp_path):
    res = _lint(tmp_path, "repro/bench/t.py", """\
        import time as walltime

        def f():
            return walltime.perf_counter()
    """)
    assert _rule_ids(res) == ["DET001"]


# ---------------------------------------------------------------------- #
# DET002 — ambient randomness
# ---------------------------------------------------------------------- #

def test_det002_flags_module_level_random(tmp_path):
    res = _lint(tmp_path, "repro/ftl/t.py", """\
        import random

        def pick(xs):
            return random.choice(xs)
    """)
    assert _rule_ids(res) == ["DET002"]


def test_det002_flags_random_construction(tmp_path):
    res = _lint(tmp_path, "repro/workloads/t.py", """\
        import os
        from random import Random

        def gen():
            r = Random(42)
            return r.random() + len(os.urandom(8))
    """)
    assert _rule_ids(res) == ["DET002", "DET002"]


def test_det002_allows_rng_module_and_seeded_streams(tmp_path):
    res = _lint(tmp_path, "repro/sim/rng.py", """\
        import random

        def make_rng(seed, label):
            return random.Random(seed)
    """)
    assert _rule_ids(res) == []
    res = _lint(tmp_path, "repro/workloads/u.py", """\
        from repro.sim.rng import make_rng

        def gen():
            return make_rng(0, "gen").random()
    """)
    assert "DET002" not in _rule_ids(res)


# ---------------------------------------------------------------------- #
# DET003 — unordered-set iteration
# ---------------------------------------------------------------------- #

def test_det003_flags_set_iteration(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def drain(xs):
            pending = set(xs)
            for x in pending:
                print(x)
            return [y for y in {1, 2, 3}]
    """)
    assert _rule_ids(res) == ["DET003", "DET003"]


def test_det003_allows_sorted_iteration(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def drain(xs):
            pending = set(xs)
            for x in sorted(pending):
                print(x)
    """)
    assert _rule_ids(res) == []


# ---------------------------------------------------------------------- #
# LAY001 — layering
# ---------------------------------------------------------------------- #

def test_lay001_flags_host_importing_device_internals(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        from repro.ftl.mapping import PageMap
        import repro.nand.chip
    """)
    assert _rule_ids(res) == ["LAY001", "LAY001"]


def test_lay001_allows_config_dataclasses_and_device_modules(tmp_path):
    res = _lint(tmp_path, "repro/core/t.py", """\
        from repro.ssd.device import MSSD, MSSDConfig
        from repro.ssd.firmware.bytefs_fw import ByteFSFirmwareConfig
        from repro.nand.geometry import FlashGeometry
    """)
    assert _rule_ids(res) == []


def test_lay001_ignores_device_side_modules(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        from repro.ftl.mapping import PageMap
    """)
    assert "LAY001" not in _rule_ids(res)


# ---------------------------------------------------------------------- #
# PERF001 — per-page device ops inside loops
# ---------------------------------------------------------------------- #

def test_perf001_flags_per_page_loop(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def flush(dev, blocks):
            for b in blocks:
                dev.trim(b)
        def drain(dev, pages):
            return [dev.write_page(p) for p in pages]
    """)
    assert _rule_ids(res) == ["PERF001", "PERF001"]


def test_perf001_allows_ranged_trim_and_straightline_calls(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def flush(dev, runs):
            for start, n in runs:
                dev.trim(start, n)
            dev.trim(0)
            dev.block_write(0, b"")
    """)
    assert _rule_ids(res) == []


def test_perf001_suppression(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def migrate(dev, pages):
            for lpa, data in pages:
                dev.write_page(lpa, data)  # repro: allow[PERF001]
    """)
    assert _rule_ids(res) == []


# ---------------------------------------------------------------------- #
# CS001 — crash-site registration
# ---------------------------------------------------------------------- #

def test_cs001_flags_unregistered_mutation(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def rogue(self):
                self.ftl.write_page(0, b"", None)
    """)
    assert _rule_ids(res) == ["CS001", "CS002"]


def test_cs001_allows_site_wrapped_mutation(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def ok(self, data):
                def _apply(k):
                    self.ftl.write_page(0, data[:k], None)
                self.faults.site("fw.ok", _apply, len(data), atom=64)
    """)
    assert _rule_ids(res) == []


def test_cs001_guardedness_propagates_through_callers(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def entry(self):
                self.faults.point("fw.entry")
                self._helper()

            def _helper(self):
                self.ftl.write_page(0, b"", None)
    """)
    assert _rule_ids(res) == []


def test_cs001_one_unguarded_caller_poisons_helper(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def entry(self):
                self.faults.point("fw.entry")
                self._helper()

            def bypass(self):
                self._helper()

            def _helper(self):
                self.ftl.write_page(0, b"", None)
    """)
    assert _rule_ids(res) == ["CS001", "CS002"]
    # the chain names the unguarded entry, not the guarded one
    chain = [f for f in res.findings if f.rule == "CS002"][0]
    assert "FW.bypass() -> FW._helper()" in chain.message


def test_cs001_ignores_non_stack_modules(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        class FS:
            def f(self):
                self.device.byte_write(0, 0, b"")
    """)
    assert "CS001" not in _rule_ids(res)


def test_cs001_skips_bare_name_calls(tmp_path):
    # dataclasses.replace() is not a device mutation.
    res = _lint(tmp_path, "repro/nand/t.py", """\
        from dataclasses import replace

        def tweak(cfg):
            return replace(cfg, page_size=8192)
    """)
    assert _rule_ids(res) == []


# ---------------------------------------------------------------------- #
# suppressions
# ---------------------------------------------------------------------- #

def test_same_line_suppression(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def drain(xs):
            pending = set(xs)
            for x in pending:  # repro: allow[DET003]
                print(x)
    """)
    assert _rule_ids(res) == []


def test_standalone_comment_suppresses_next_line(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def drain(xs):
            pending = set(xs)
            # repro: allow[DET003]
            for x in pending:
                print(x)
    """)
    assert _rule_ids(res) == []


def test_suppression_is_rule_specific(tmp_path):
    res = _lint(tmp_path, "repro/fs/t.py", """\
        def drain(xs):
            pending = set(xs)
            for x in pending:  # repro: allow[DET001]
                print(x)
    """)
    assert _rule_ids(res) == ["DET003"]


def test_cs001_def_line_exemption_covers_whole_function(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def recover(self):  # repro: allow[CS001]
                self.ftl.write_page(0, b"", None)
                self.ftl.write_page(1, b"", None)
    """)
    assert _rule_ids(res) == []


def test_cs001_exempt_function_does_not_poison_callees(tmp_path):
    res = _lint(tmp_path, "repro/ssd/t.py", """\
        class FW:
            def entry(self):
                self.faults.point("fw.entry")
                self._helper()

            def recover(self):  # repro: allow[CS001]
                self._helper()

            def _helper(self):
                self.ftl.write_page(0, b"", None)
    """)
    assert _rule_ids(res) == []


# ---------------------------------------------------------------------- #
# driver behaviour
# ---------------------------------------------------------------------- #

def test_every_rule_id_has_a_firing_fixture():
    """RULES and the fixtures (here + tests/test_whole_program_lint.py)
    must stay in sync."""
    assert set(RULES) == {
        "CS001", "CS002", "CONC001", "CONC002", "CONC003", "SCH001",
        "DET001", "DET002", "DET003", "LAY001", "PERF001",
    }


def test_syntax_error_reported_not_crashed(tmp_path):
    res = _lint(tmp_path, "repro/fs/broken.py", "def f(:\n")
    assert res.findings == []
    assert len(res.errors) == 1
    assert res.exit_code == 2


def test_rule_filter(tmp_path):
    (tmp_path / "repro" / "fs").mkdir(parents=True)
    (tmp_path / "repro" / "fs" / "t.py").write_text(textwrap.dedent("""\
        import time

        def f(xs):
            s = set(xs)
            for x in s:
                time.time()
    """))
    only_det1 = lint_paths([tmp_path], ["DET001"])
    assert _rule_ids(only_det1) == ["DET001"]
    with pytest.raises(ValueError):
        lint_paths([tmp_path], ["NOPE99"])


def test_lint_clean_on_real_tree():
    """The repo's own stack must lint clean — the CI gate relies on it."""
    res = lint_paths([Path(repro.__file__).parent])
    assert res.errors == []
    assert res.findings == [], "\n".join(f.format() for f in res.findings)


def test_cluster_package_is_registered_with_every_pass():
    """repro.cluster sits on the host side of the boundary, runs inside
    the crash-site-guarded stack, and legitimately reads the virtual
    clock — dropping any registration would silently shrink coverage."""
    from repro.analysis.crashsites import STACK_PREFIXES
    from repro.analysis.determinism import DET001_CONSUMERS
    from repro.analysis.layering import HOST_PREFIXES

    assert "repro.cluster" in STACK_PREFIXES
    assert "repro.cluster" in DET001_CONSUMERS
    assert "repro.cluster" in HOST_PREFIXES


def test_telemetry_package_is_registered_with_every_pass():
    """repro.telemetry is host-side code (reads devices only through
    MSSD.gauges()), a blessed clock consumer (every row is stamped with
    a virtual-time boundary), and serve-reachable (the sampler runs
    inside the serve loop) — dropping any registration would silently
    shrink lint coverage over the new subsystem."""
    from repro.analysis.concurrency import SERVE_ROOTS
    from repro.analysis.determinism import DET001_CONSUMERS
    from repro.analysis.layering import HOST_PREFIXES

    assert "repro.telemetry" in DET001_CONSUMERS
    assert "repro.telemetry" in HOST_PREFIXES
    assert "repro.telemetry" in SERVE_ROOTS


def test_parallel_serving_modules_are_registered_with_every_pass():
    """The process-parallel serving modules (shard kernel, worker,
    reducer) ride on the ``repro.cluster`` prefix registrations: they
    must be serve-reachable (CONC rules), blessed clock consumers (the
    worker orchestrator times the drain phase), host-side (LAY001), and
    stack-guarded (crash sites fire inside the shard drain).  If they
    ever move out of the package, this pins that the registries must
    move with them."""
    from repro.analysis.concurrency import SERVE_ROOTS
    from repro.analysis.crashsites import STACK_PREFIXES
    from repro.analysis.determinism import DET001_CONSUMERS, _module_in
    from repro.analysis.layering import HOST_PREFIXES

    for mod in ("repro.cluster.kernel", "repro.cluster.worker",
                "repro.cluster.merge"):
        assert _module_in(mod, SERVE_ROOTS)
        assert _module_in(mod, DET001_CONSUMERS)
        assert _module_in(mod, HOST_PREFIXES)
        assert _module_in(mod, STACK_PREFIXES)


def test_devcache_package_is_registered_with_every_pass():
    """repro.devcache is device-internal (host code may import only its
    DevCacheConfig across the boundary) and sits inside the
    crash-site-guarded stack (dirty write-back issues the same mutation
    primitives as firmware).  Dropping either registration would let an
    unguarded eviction path or a host-side import of DeviceCache slip
    through the lint gate unnoticed."""
    from repro.analysis.crashsites import STACK_PREFIXES
    from repro.analysis.determinism import _module_in
    from repro.analysis.layering import DEVICE_INTERNAL_PREFIXES, HOST_PREFIXES

    assert "repro.devcache" in STACK_PREFIXES
    assert "repro.devcache" in DEVICE_INTERNAL_PREFIXES
    # the cache tier lives behind the firmware: it must never be
    # registered as host-side code
    for mod in ("repro.devcache", "repro.devcache.cache",
                "repro.devcache.policy", "repro.devcache.prefetch"):
        assert not _module_in(mod, HOST_PREFIXES)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #

def test_cli_lint_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_reports_findings_and_exits_nonzero(tmp_path, capsys):
    f = tmp_path / "repro" / "fs" / "t.py"
    f.parent.mkdir(parents=True)
    f.write_text("def f(xs):\n    for x in set(xs):\n        print(x)\n")
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET003" in out and "t.py:2" in out


def test_cli_lint_json_format(tmp_path, capsys):
    f = tmp_path / "repro" / "ftl" / "t.py"
    f.parent.mkdir(parents=True)
    f.write_text("import random\n\ndef f():\n    return random.random()\n")
    assert main(["lint", str(tmp_path), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert [x["rule"] for x in payload["findings"]] == ["DET002"]
    assert payload["findings"][0]["line"] == 4
