"""Unit tests for the three-layer write-log index (Fig 3)."""

import pytest

from repro.ssd.firmware.log_index import ChunkEntry, LogIndex


def entry(offset, length, seq, txid=None):
    return ChunkEntry(
        offset=offset, length=length, log_off=0, txid=txid, seq=seq,
        data=bytes(length),
    )


def make_index():
    # 1 MB address space, 4 KB pages, 64 KB partitions -> 16 pages/part
    return LogIndex(1 << 20, 4096, partition_bytes=64 << 10)


def test_insert_and_lookup():
    idx = make_index()
    idx.insert(5, entry(0, 64, 1))
    node = idx.lookup(5)
    assert node is not None
    assert node.lpa == 5
    assert len(node.chunks) == 1
    assert idx.lookup(6) is None


def test_chunk_list_ordered_by_offset():
    idx = make_index()
    idx.insert(1, entry(128, 64, 1))
    idx.insert(1, entry(0, 64, 2))
    idx.insert(1, entry(64, 64, 3))
    offsets = [c.offset for c in idx.lookup(1).chunks]
    assert offsets == [0, 64, 128]


def test_pages_in_same_partition_share_skiplist():
    idx = make_index()
    idx.insert(0, entry(0, 64, 1))
    idx.insert(15, entry(0, 64, 2))   # same 16-page partition
    idx.insert(16, entry(0, 64, 3))   # next partition
    assert len(idx._partitions) == 2


def test_range_lookup_spans_partitions():
    idx = make_index()
    for lpa in (0, 10, 17, 40, 200):
        idx.insert(lpa, entry(0, 64, lpa))
    found = [n.lpa for n in idx.lookup_range(5, 41)]
    assert found == [10, 17, 40]


def test_remove_page():
    idx = make_index()
    idx.insert(3, entry(0, 64, 1))
    idx.insert(3, entry(64, 64, 2))
    node = idx.remove_page(3)
    assert len(node.chunks) == 2
    assert idx.lookup(3) is None
    assert idx.n_chunks == 0


def test_pages_iterated_in_lpa_order():
    idx = make_index()
    for lpa in (200, 5, 90, 17):
        idx.insert(lpa, entry(0, 64, lpa))
    assert [n.lpa for n in idx.pages()] == [5, 17, 90, 200]


def test_memory_accounting_grows_with_chunks():
    idx = make_index()
    before = idx.memory_bytes()
    for i in range(100):
        idx.insert(i % 7, entry((i * 64) % 4096, 64, i))
    assert idx.memory_bytes() > before
    assert idx.n_chunks == 100


def test_partition_must_be_page_aligned():
    with pytest.raises(ValueError):
        LogIndex(1 << 20, 4096, partition_bytes=1000)


def test_clear():
    idx = make_index()
    idx.insert(1, entry(0, 64, 1))
    idx.clear()
    assert idx.n_chunks == 0
    assert idx.lookup(1) is None
