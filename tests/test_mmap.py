"""Tests for memory-mapped I/O (§4.6) on the Ext4 family."""

import pytest

from repro.fs.errors import InvalidArgument
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.stats.traffic import Direction, Interface
from tests.conftest import make_stack


@pytest.fixture(params=["ext4", "bytefs"])
def stack(request):
    return make_stack(request.param)


def test_mmap_read_sees_file_content(stack):
    _clk, _st, _dev, fs = stack
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"mapped content here")
    fs.fsync(fd)
    region = fs.mmap(fd)
    assert region.load(0, 6) == b"mapped"
    assert region.load(7, 7) == b"content"
    region.close()
    fs.close(fd)


def test_mmap_store_visible_through_read_path(stack):
    _clk, _st, _dev, fs = stack
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 8192)
    fs.fsync(fd)
    region = fs.mmap(fd)
    region.store(4090, b"SPANNING")  # crosses a page boundary
    assert region.load(4090, 8) == b"SPANNING"
    region.msync()
    assert fs.pread(fd, 4090, 8) == b"SPANNING"
    region.close()
    fs.close(fd)


def test_msync_persists_across_crash():
    _clk, _st, device, fs = make_stack("bytefs")
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"A" * 4096)
    fs.fsync(fd)
    region = fs.mmap(fd)
    region.store(100, b"durable-mmap")
    region.msync()
    device.power_fail()
    fs.crash()
    fs.remount()
    fd = fs.open("/m", O_RDWR)
    assert fs.pread(fd, 100, 12) == b"durable-mmap"
    fs.close(fd)


def test_mmap_small_store_uses_byte_interface_on_bytefs():
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    region = fs.mmap(fd)
    before = st.data_bytes(Direction.WRITE, Interface.BYTE)
    region.store(200, b"xy")
    region.msync()
    assert st.data_bytes(Direction.WRITE, Interface.BYTE) > before
    region.close()
    fs.close(fd)


def test_mmap_bounds_checked(stack):
    _clk, _st, _dev, fs = stack
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 100)
    region = fs.mmap(fd)
    with pytest.raises(InvalidArgument):
        region.load(90, 20)
    with pytest.raises(InvalidArgument):
        region.store(101, b"y")
    region.close()
    with pytest.raises(InvalidArgument):
        region.load(0, 1)


def test_mmap_extends_beyond_eof_with_explicit_length(stack):
    _clk, _st, _dev, fs = stack
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"x")
    region = fs.mmap(fd, 0, 8192)
    region.store(5000, b"grown")
    region.msync()
    assert fs.stat("/m").size >= 5005
    assert fs.pread(fd, 5000, 5) == b"grown"
    region.close()
    fs.close(fd)


def test_mmap_page_fault_counted(stack):
    _clk, st, _dev, fs = stack
    fd = fs.open("/m", O_CREAT | O_RDWR)
    fs.write(fd, b"z" * 8192)
    fs.fsync(fd)
    fs.page_cache.drop_all()
    region = fs.mmap(fd)
    region.load(0, 8192)
    assert st.counters.get("mmap_page_faults", 0) >= 2
    region.close()
    fs.close(fd)
