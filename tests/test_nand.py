"""Unit tests for flash geometry, timing, and the chip array."""

import pytest

from repro.nand.chip import FlashArray, FlashError
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel, FIG13_FLASH_LATENCIES


@pytest.fixture
def geo():
    return FlashGeometry(
        n_channels=2, ways_per_channel=2, blocks_per_way=4,
        pages_per_block=8, page_size=512,
    )


def test_geometry_totals(geo):
    assert geo.total_pages == 2 * 2 * 4 * 8
    assert geo.total_blocks == 2 * 2 * 4
    assert geo.capacity_bytes == geo.total_pages * 512
    assert geo.block_size == 8 * 512


def test_ppa_roundtrip(geo):
    for ch in range(2):
        for way in range(2):
            for blk in range(4):
                for pg in range(8):
                    ppa = geo.ppa(ch, way, blk, pg)
                    assert geo.unpack(ppa) == (ch, way, blk, pg)


def test_ppa_dense_and_unique(geo):
    seen = set()
    for ch in range(2):
        for way in range(2):
            for blk in range(4):
                for pg in range(8):
                    seen.add(geo.ppa(ch, way, blk, pg))
    assert seen == set(range(geo.total_pages))


def test_block_id_mapping(geo):
    ppa = geo.ppa(1, 1, 3, 7)
    block_id = geo.block_id_of(ppa)
    assert geo.block_base_ppa(block_id) <= ppa
    assert geo.channel_of_block(block_id) == 1


def test_geometry_validation():
    with pytest.raises(ValueError):
        FlashGeometry(n_channels=0)
    geo = FlashGeometry()
    with pytest.raises(ValueError):
        geo.unpack(geo.total_pages)


def test_flash_read_unprogrammed_is_zeros(geo):
    flash = FlashArray(geo)
    assert flash.read_page(0) == bytes(512)


def test_flash_program_and_read(geo):
    flash = FlashArray(geo)
    flash.program_page(5, b"hello")
    data = flash.read_page(5)
    assert data[:5] == b"hello"
    assert len(data) == 512


def test_flash_program_twice_without_erase_fails(geo):
    flash = FlashArray(geo)
    flash.program_page(5, b"a")
    with pytest.raises(FlashError):
        flash.program_page(5, b"b")


def test_flash_erase_allows_reprogram(geo):
    flash = FlashArray(geo)
    flash.program_page(0, b"a")
    flash.erase_block(0)
    assert flash.read_page(0) == bytes(512)
    flash.program_page(0, b"b")
    assert flash.read_page(0)[:1] == b"b"


def test_flash_wear_counting(geo):
    flash = FlashArray(geo)
    flash.erase_block(3)
    flash.erase_block(3)
    assert flash.wear(3) == 2
    assert flash.wear(0) == 0


def test_flash_oversize_program_rejected(geo):
    flash = FlashArray(geo)
    with pytest.raises(FlashError):
        flash.program_page(0, bytes(513))


def test_timing_defaults_match_paper_table4():
    t = TimingModel()
    assert t.flash_read_ns == 40_000
    assert t.flash_write_ns == 60_000
    assert t.mmio_read_ns == 4_800
    assert t.mmio_write_ns == 600


def test_timing_flash_latency_override():
    t = TimingModel().with_flash_latency(3, 80)
    assert t.flash_read_ns == 3_000
    assert t.flash_write_ns == 80_000


def test_timing_cxl_mode():
    t = TimingModel().as_cxl()
    assert t.mmio_read_ns == 175
    assert t.mmio_write_ns == 175


def test_dma_transfer_time_matches_bandwidth():
    t = TimingModel()
    # 2.5 GB/s write => 4096 bytes in ~1638 ns
    assert abs(t.dma_transfer_ns(4096, write=True) - 4096 / 2.5) < 1
    assert abs(t.dma_transfer_ns(4096, write=False) - 4096 / 3.5) < 1


def test_fig13_grid_contains_default_point():
    assert (40, 60) in FIG13_FLASH_LATENCIES
