"""Unit and property tests for the host page cache with CoW (§4.6)."""

from hypothesis import given, settings, strategies as st

from repro.host.page_cache import CachedPage, PageCache


def test_cached_page_pads_short_data():
    page = CachedPage(b"abc", 4096)
    assert len(page.data) == 4096


def test_dirty_chunks_without_cow_is_whole_page():
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=False)
    assert page.dirty_chunks() == [(0, 4096)]
    assert page.modified_ratio() == 1.0


def test_dirty_chunks_with_cow_finds_modified_lines():
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=True)
    page.data[100] = 1       # line 1
    page.data[4000] = 2      # line 62
    chunks = page.dirty_chunks()
    assert (64, 64) in chunks
    assert (3968, 64) in chunks
    assert page.modified_ratio() == 2 / 64


def test_modified_ratio_drives_interface_policy():
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=True)
    for off in range(0, 512, 64):
        page.data[off] = 9
    assert page.modified_ratio() == 8 / 64  # exactly 1/8: block interface
    page2 = CachedPage(bytes(4096), 4096)
    page2.mark_dirty(cow=True)
    page2.data[0] = 9
    assert page2.modified_ratio() < 1 / 8


def test_adjacent_dirty_lines_coalesce_into_runs():
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=True)
    page.data[0:256] = b"\x01" * 256
    assert page.dirty_chunks() == [(0, 256)]


def test_clean_drops_duplicate():
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=True)
    assert page.original is not None
    page.clean()
    assert page.original is None
    assert not page.dirty


def test_cache_lookup_hit_miss_counters():
    pc = PageCache(4, 4096)
    assert pc.lookup(1, 0) is None
    pc.install(1, 0, b"x", lambda *a: None)
    assert pc.lookup(1, 0) is not None
    assert pc.hits == 1
    assert pc.misses == 1


def test_cache_evicts_clean_first():
    pc = PageCache(2, 4096)
    written = []

    def wb(ino, idx, page):
        written.append((ino, idx))
        page.clean()

    pc.install(1, 0, b"a", wb)
    pc.install(1, 1, b"b", wb)
    pc.mark_dirty(1, 1, cow=False)
    pc.install(1, 2, b"c", wb)  # must evict the clean page 0
    assert written == []
    assert pc.lookup(1, 0) is None
    assert pc.lookup(1, 1) is not None


def test_cache_writeback_on_dirty_eviction():
    pc = PageCache(2, 4096)
    written = []

    def wb(ino, idx, page):
        written.append((ino, idx))
        page.clean()

    pc.install(1, 0, b"a", wb)
    pc.mark_dirty(1, 0, cow=False)
    pc.install(1, 1, b"b", wb)
    pc.mark_dirty(1, 1, cow=False)
    pc.install(1, 2, b"c", wb)
    assert len(written) == 1


def test_duplicate_page_accounting():
    pc = PageCache(8, 4096)
    pc.install(1, 0, b"a", lambda *a: None)
    pc.install(1, 1, b"b", lambda *a: None)
    pc.mark_dirty(1, 0, cow=True)
    assert pc.duplicate_pages() == 1
    assert pc.cow_copies == 1


def test_drop_inode_and_drop_all():
    pc = PageCache(8, 4096)
    pc.install(1, 0, b"a", lambda *a: None)
    pc.install(2, 0, b"b", lambda *a: None)
    pc.drop_inode(1)
    assert pc.lookup(1, 0) is None
    assert pc.lookup(2, 0) is not None
    pc.drop_all()
    assert pc.cached_pages == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4095), st.binary(min_size=1, max_size=64)),
        max_size=20,
    )
)
def test_xor_diff_exactly_covers_modifications(writes):
    """Property: the dirty-chunk runs cover every modified byte, and the
    merge of (original + dirty chunks) reproduces the current page."""
    page = CachedPage(bytes(4096), 4096)
    page.mark_dirty(cow=True)
    for off, data in writes:
        n = min(len(data), 4096 - off)
        page.data[off : off + n] = data[:n]
    rebuilt = bytearray(page.original)
    for off, length in page.dirty_chunks():
        rebuilt[off : off + length] = page.data[off : off + length]
    assert bytes(rebuilt) == bytes(page.data)
