"""Unit tests for resource timelines (queueing model)."""

from repro.sim.resources import ChannelArray, Pipeline, Resource


def test_resource_serves_immediately_when_idle():
    r = Resource("x")
    assert r.serve(100, 50) == 150


def test_resource_queues_behind_busy():
    r = Resource("x")
    r.serve(0, 100)
    # arrives at t=10 but the resource is busy until 100
    assert r.serve(10, 50) == 150


def test_resource_idle_gap():
    r = Resource("x")
    r.serve(0, 10)
    assert r.serve(100, 10) == 110


def test_utilization():
    r = Resource("x")
    r.serve(0, 50)
    assert r.utilization(100) == 0.5
    assert r.utilization(0) == 0.0


def test_channel_array_independent_channels():
    ch = ChannelArray(2)
    end0 = ch.serve(0, 0, 100)
    end1 = ch.serve(1, 0, 100)
    assert end0 == 100
    assert end1 == 100  # parallel, not queued


def test_channel_array_same_channel_queues():
    ch = ChannelArray(2)
    ch.serve(0, 0, 100)
    assert ch.serve(0, 0, 100) == 200


def test_earliest_free():
    ch = ChannelArray(3)
    ch.serve(0, 0, 100)
    ch.serve(1, 0, 50)
    assert ch.earliest_free() == 2


def test_pipeline_overlaps_up_to_width():
    p = Pipeline("p", 2)
    ends = [p.serve(0, 100) for _ in range(4)]
    # two lanes: finish times 100,100,200,200
    assert sorted(ends) == [100, 100, 200, 200]


def test_pipeline_width_one_is_serial():
    p = Pipeline("p", 1)
    assert [p.serve(0, 10) for _ in range(3)] == [10, 20, 30]
