"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


def test_single_thread_advance():
    clk = VirtualClock(1)
    assert clk.now == 0
    clk.advance(100)
    assert clk.now == 100
    assert clk.elapsed_ns == 100


def test_advance_to_never_goes_backwards():
    clk = VirtualClock(1)
    clk.advance(100)
    clk.advance_to(50)
    assert clk.now == 100
    clk.advance_to(200)
    assert clk.now == 200


def test_negative_advance_rejected():
    clk = VirtualClock(1)
    with pytest.raises(ValueError):
        clk.advance(-1)


def test_per_thread_timelines_are_independent():
    clk = VirtualClock(3)
    clk.switch(0)
    clk.advance(100)
    clk.switch(1)
    clk.advance(50)
    assert clk.time_of(0) == 100
    assert clk.time_of(1) == 50
    assert clk.time_of(2) == 0
    assert clk.elapsed_ns == 100


def test_next_thread_picks_furthest_behind():
    clk = VirtualClock(3)
    clk.switch(0)
    clk.advance(100)
    clk.switch(2)
    clk.advance(10)
    assert clk.next_thread() == 1


def test_sync_all_is_a_barrier():
    clk = VirtualClock(2)
    clk.switch(0)
    clk.advance(500)
    clk.sync_all()
    assert clk.time_of(1) == 500


def test_switch_out_of_range():
    clk = VirtualClock(2)
    with pytest.raises(IndexError):
        clk.switch(5)


def test_elapsed_tracks_maximum_ever_seen():
    clk = VirtualClock(2)
    clk.switch(1)
    clk.advance(300)
    clk.switch(0)
    assert clk.elapsed_ns == 300


def test_zero_threads_rejected():
    with pytest.raises(ValueError):
        VirtualClock(0)


def test_reset():
    clk = VirtualClock(2)
    clk.advance(100)
    clk.reset()
    assert clk.now == 0
    assert clk.elapsed_ns == 0


def test_ready_heap_stays_bounded_across_switch_cycles():
    # The lazy heap revalidates stale entries in place (heapreplace), so
    # arbitrarily many switch/advance/next_thread cycles must never grow
    # it beyond one entry per timeline.
    clk = VirtualClock(8)
    for round_ in range(200):
        tid = clk.next_thread()
        clk.switch(tid)
        clk.advance(10 + (tid + round_) % 7)
        assert len(clk._ready) == clk.n_threads


def test_ready_heap_stays_bounded_across_sync_cycles():
    # Barriers rebuild the heap outright; interleaving them with normal
    # scheduling must not leak entries either.
    clk = VirtualClock(4)
    for round_ in range(50):
        for tid in range(4):
            clk.switch(tid)
            clk.advance(5 * (tid + 1))
        assert clk.next_thread() == 0
        clk.sync_all()
        assert len(clk._ready) == clk.n_threads


def test_next_thread_compacts_artificially_bloated_heap():
    # A client that pushed refreshed entries instead of replacing in
    # place would bloat the heap with stale duplicates; next_thread's
    # compaction backstop rebuilds from the live timelines.
    import heapq

    clk = VirtualClock(4)
    clk.switch(1)
    clk.advance(100)
    for stale_t in range(20):
        heapq.heappush(clk._ready, (float(stale_t), 1))
    assert len(clk._ready) > 2 * clk.n_threads
    assert clk.next_thread() == 0
    assert len(clk._ready) == clk.n_threads
    assert sorted(tid for _, tid in clk._ready) == [0, 1, 2, 3]


def test_sync_to_adopts_external_epoch():
    clk = VirtualClock(3)
    clk.switch(0)
    clk.advance(250)
    assert clk.sync_to(400) == 400
    assert [clk.time_of(t) for t in range(3)] == [400, 400, 400]
    assert clk.now == 400
    assert clk.elapsed_ns == 400
    assert len(clk._ready) == clk.n_threads
    assert clk.next_thread() == 0


def test_sync_to_refuses_to_rewind():
    clk = VirtualClock(2)
    clk.switch(1)
    clk.advance(1000)
    with pytest.raises(ValueError):
        clk.sync_to(999)
