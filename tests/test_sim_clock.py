"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


def test_single_thread_advance():
    clk = VirtualClock(1)
    assert clk.now == 0
    clk.advance(100)
    assert clk.now == 100
    assert clk.elapsed_ns == 100


def test_advance_to_never_goes_backwards():
    clk = VirtualClock(1)
    clk.advance(100)
    clk.advance_to(50)
    assert clk.now == 100
    clk.advance_to(200)
    assert clk.now == 200


def test_negative_advance_rejected():
    clk = VirtualClock(1)
    with pytest.raises(ValueError):
        clk.advance(-1)


def test_per_thread_timelines_are_independent():
    clk = VirtualClock(3)
    clk.switch(0)
    clk.advance(100)
    clk.switch(1)
    clk.advance(50)
    assert clk.time_of(0) == 100
    assert clk.time_of(1) == 50
    assert clk.time_of(2) == 0
    assert clk.elapsed_ns == 100


def test_next_thread_picks_furthest_behind():
    clk = VirtualClock(3)
    clk.switch(0)
    clk.advance(100)
    clk.switch(2)
    clk.advance(10)
    assert clk.next_thread() == 1


def test_sync_all_is_a_barrier():
    clk = VirtualClock(2)
    clk.switch(0)
    clk.advance(500)
    clk.sync_all()
    assert clk.time_of(1) == 500


def test_switch_out_of_range():
    clk = VirtualClock(2)
    with pytest.raises(IndexError):
        clk.switch(5)


def test_elapsed_tracks_maximum_ever_seen():
    clk = VirtualClock(2)
    clk.switch(1)
    clk.advance(300)
    clk.switch(0)
    assert clk.elapsed_ns == 300


def test_zero_threads_rejected():
    with pytest.raises(ValueError):
        VirtualClock(0)


def test_reset():
    clk = VirtualClock(2)
    clk.advance(100)
    clk.reset()
    assert clk.now == 0
    assert clk.elapsed_ns == 0
