"""Unit and property tests for the firmware skip list."""

import random

from hypothesis import given, settings, strategies as st

from repro.ssd.firmware.skiplist import SkipList


def test_insert_get_delete():
    sl = SkipList()
    sl.insert(5, "a")
    sl.insert(3, "b")
    sl.insert(9, "c")
    assert sl.get(5) == "a"
    assert sl.get(3) == "b"
    assert sl.get(4) is None
    assert len(sl) == 3
    assert sl.delete(5)
    assert not sl.delete(5)
    assert sl.get(5) is None
    assert len(sl) == 2


def test_insert_replaces_value():
    sl = SkipList()
    sl.insert(1, "x")
    sl.insert(1, "y")
    assert sl.get(1) == "y"
    assert len(sl) == 1


def test_items_in_sorted_order():
    sl = SkipList(random.Random(1))
    keys = [9, 1, 7, 3, 5]
    for k in keys:
        sl.insert(k, k * 10)
    assert [k for k, _v in sl.items()] == sorted(keys)


def test_range_query():
    sl = SkipList()
    for k in range(0, 100, 10):
        sl.insert(k, k)
    assert [k for k, _ in sl.range(25, 65)] == [30, 40, 50, 60]
    assert [k for k, _ in sl.range(30, 31)] == [30]
    assert list(sl.range(200, 300)) == []


def test_clear():
    sl = SkipList()
    for k in range(10):
        sl.insert(k, k)
    sl.clear()
    assert len(sl) == 0
    assert list(sl.items()) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1000), st.integers()), max_size=200))
def test_skiplist_matches_dict_model(ops):
    """Property: a skip list behaves exactly like a dict + sorted()."""
    sl = SkipList(random.Random(7))
    model = {}
    for key, value in ops:
        sl.insert(key, value)
        model[key] = value
    assert len(sl) == len(model)
    assert list(sl.items()) == sorted(model.items())
    for key in list(model)[::3]:
        assert sl.delete(key)
        del model[key]
    assert list(sl.items()) == sorted(model.items())


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(0, 500), max_size=100),
    st.integers(0, 500),
    st.integers(0, 500),
)
def test_skiplist_range_matches_model(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    sl = SkipList(random.Random(3))
    for k in keys:
        sl.insert(k, k)
    assert [k for k, _v in sl.range(lo, hi)] == sorted(
        k for k in keys if lo <= k < hi
    )
