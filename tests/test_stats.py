"""Unit tests for traffic accounting."""

import math

import pytest

from repro.stats.traffic import (
    Direction,
    Interface,
    LatencyRecorder,
    StructKind,
    TrafficStats,
)


def test_record_and_query_by_filters():
    st = TrafficStats()
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 64)
    st.record_host_ssd(StructKind.DATA, Direction.WRITE, Interface.BLOCK, 4096)
    st.record_host_ssd(StructKind.DATA, Direction.READ, Interface.BLOCK, 8192)
    assert st.host_ssd_bytes(direction=Direction.WRITE) == 64 + 4096
    assert st.host_ssd_bytes(interface=Interface.BYTE) == 64
    assert st.metadata_bytes(Direction.WRITE) == 64
    assert st.data_bytes(Direction.WRITE) == 4096


def test_amplification():
    st = TrafficStats()
    st.record_app(Direction.WRITE, 1000)
    st.record_host_ssd(StructKind.DATA, Direction.WRITE, Interface.BLOCK, 4000)
    assert st.amplification(Direction.WRITE) == 4.0
    assert math.isnan(st.amplification(Direction.READ))


def test_breakdown_by_kind():
    st = TrafficStats()
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 10)
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BLOCK, 20)
    st.record_host_ssd(StructKind.DENTRY, Direction.WRITE, Interface.BYTE, 5)
    bd = st.breakdown(Direction.WRITE)
    assert bd[StructKind.INODE] == 30
    assert bd[StructKind.DENTRY] == 5


def test_flash_traffic():
    st = TrafficStats()
    st.record_flash(StructKind.DATA, Direction.WRITE, 4096)
    st.record_flash(StructKind.OTHER, Direction.READ, 4096)
    assert st.flash_bytes(direction=Direction.WRITE) == 4096
    assert st.flash_bytes() == 8192


def test_negative_size_rejected():
    st = TrafficStats()
    with pytest.raises(ValueError):
        st.record_host_ssd(
            StructKind.DATA, Direction.WRITE, Interface.BLOCK, -1
        )


def test_metadata_kind_classification():
    assert StructKind.INODE.is_metadata
    assert StructKind.JOURNAL.is_metadata
    assert not StructKind.DATA.is_metadata


def test_counters():
    st = TrafficStats()
    st.bump("x")
    st.bump("x", 4)
    assert st.counters["x"] == 5


def test_fault_counters_separate_from_traffic_counters():
    st = TrafficStats()
    st.bump("gc_runs")
    st.bump_fault("fault_sites_reached", 3)
    assert st.fault_counters["fault_sites_reached"] == 3
    assert "fault_sites_reached" not in st.counters
    assert "gc_runs" not in st.fault_counters


def test_reset():
    st = TrafficStats()
    st.record_app(Direction.WRITE, 10)
    st.bump("y")
    st.reset()
    assert st.app == {}
    assert st.counters == {}


def test_reset_round_trips_to_all_zero_snapshot():
    st = TrafficStats()
    empty = st.snapshot()
    assert all(v == {} for v in empty.values())
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 64)
    st.record_flash(StructKind.DATA, Direction.WRITE, 4096)
    st.record_app(Direction.WRITE, 64)
    st.bump("gc_runs")
    st.bump_fault("fault_crashes_injected")
    assert st.snapshot() != empty
    st.reset()
    assert st.snapshot() == empty


def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
        rec.record("op", v)
    assert rec.mean("op") == 55
    assert rec.percentile("op", 0) == 10
    assert rec.percentile("op", 100) == 100
    assert abs(rec.percentile("op", 50) - 55) < 1e-9
    assert rec.count("op") == 10


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert math.isnan(rec.mean("nope"))
    assert math.isnan(rec.percentile("nope", 95))


# ---------------------------------------------------------------------- #
# reset() audit: every mutable aggregate must be covered, reflectively,
# so adding a new counter dict without teaching reset() fails here
# ---------------------------------------------------------------------- #

def _populated_traffic() -> TrafficStats:
    st = TrafficStats()
    st.record_host_ssd(StructKind.DATA, Direction.WRITE, Interface.BLOCK, 512)
    st.record_flash(StructKind.INODE, Direction.READ, 4096)
    st.record_app(Direction.READ, 100)
    st.bump("cache_hits", 3)
    st.bump_fault("crashes", 1)
    return st


def test_traffic_reset_covers_every_aggregate_attribute():
    st = _populated_traffic()
    mutable = {
        name: val for name, val in vars(st).items()
        if isinstance(val, dict)
    }
    assert len(mutable) >= 5, "expected the five aggregate dicts"
    assert all(mutable.values()), "audit setup must populate every dict"
    st.reset()
    for name, val in vars(st).items():
        if isinstance(val, dict):
            assert val == {}, f"TrafficStats.reset() missed {name!r}"


def test_traffic_reset_then_record_starts_from_zero():
    st = _populated_traffic()
    st.reset()
    st.record_app(Direction.READ, 7)
    assert st.app[Direction.READ] == 7


def test_latency_reset_covers_samples_and_sort_cache():
    rec = LatencyRecorder()
    rec.record("op", 5.0)
    rec.record("op", 15.0)
    assert rec.percentile("op", 50) == 10.0  # populates the sort cache
    rec.reset()
    for name, val in vars(rec).items():
        if isinstance(val, dict):
            assert val == {}, f"LatencyRecorder.reset() missed {name!r}"
    assert rec.ops() == []
    assert math.isnan(rec.percentile("op", 50))
    # A stale sort cache surviving reset would surface here: the new
    # sample must be the whole distribution, not merged with the old.
    rec.record("op", 42.0)
    assert rec.percentile("op", 50) == 42.0
    assert rec.count("op") == 1
