"""Unit tests for traffic accounting."""

import math

import pytest

from repro.stats.traffic import (
    Direction,
    Interface,
    LatencyRecorder,
    StructKind,
    TrafficStats,
)


def test_record_and_query_by_filters():
    st = TrafficStats()
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 64)
    st.record_host_ssd(StructKind.DATA, Direction.WRITE, Interface.BLOCK, 4096)
    st.record_host_ssd(StructKind.DATA, Direction.READ, Interface.BLOCK, 8192)
    assert st.host_ssd_bytes(direction=Direction.WRITE) == 64 + 4096
    assert st.host_ssd_bytes(interface=Interface.BYTE) == 64
    assert st.metadata_bytes(Direction.WRITE) == 64
    assert st.data_bytes(Direction.WRITE) == 4096


def test_amplification():
    st = TrafficStats()
    st.record_app(Direction.WRITE, 1000)
    st.record_host_ssd(StructKind.DATA, Direction.WRITE, Interface.BLOCK, 4000)
    assert st.amplification(Direction.WRITE) == 4.0
    assert math.isnan(st.amplification(Direction.READ))


def test_breakdown_by_kind():
    st = TrafficStats()
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 10)
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BLOCK, 20)
    st.record_host_ssd(StructKind.DENTRY, Direction.WRITE, Interface.BYTE, 5)
    bd = st.breakdown(Direction.WRITE)
    assert bd[StructKind.INODE] == 30
    assert bd[StructKind.DENTRY] == 5


def test_flash_traffic():
    st = TrafficStats()
    st.record_flash(StructKind.DATA, Direction.WRITE, 4096)
    st.record_flash(StructKind.OTHER, Direction.READ, 4096)
    assert st.flash_bytes(direction=Direction.WRITE) == 4096
    assert st.flash_bytes() == 8192


def test_negative_size_rejected():
    st = TrafficStats()
    with pytest.raises(ValueError):
        st.record_host_ssd(
            StructKind.DATA, Direction.WRITE, Interface.BLOCK, -1
        )


def test_metadata_kind_classification():
    assert StructKind.INODE.is_metadata
    assert StructKind.JOURNAL.is_metadata
    assert not StructKind.DATA.is_metadata


def test_counters():
    st = TrafficStats()
    st.bump("x")
    st.bump("x", 4)
    assert st.counters["x"] == 5


def test_fault_counters_separate_from_traffic_counters():
    st = TrafficStats()
    st.bump("gc_runs")
    st.bump_fault("fault_sites_reached", 3)
    assert st.fault_counters["fault_sites_reached"] == 3
    assert "fault_sites_reached" not in st.counters
    assert "gc_runs" not in st.fault_counters


def test_reset():
    st = TrafficStats()
    st.record_app(Direction.WRITE, 10)
    st.bump("y")
    st.reset()
    assert st.app == {}
    assert st.counters == {}


def test_reset_round_trips_to_all_zero_snapshot():
    st = TrafficStats()
    empty = st.snapshot()
    assert all(v == {} for v in empty.values())
    st.record_host_ssd(StructKind.INODE, Direction.WRITE, Interface.BYTE, 64)
    st.record_flash(StructKind.DATA, Direction.WRITE, 4096)
    st.record_app(Direction.WRITE, 64)
    st.bump("gc_runs")
    st.bump_fault("fault_crashes_injected")
    assert st.snapshot() != empty
    st.reset()
    assert st.snapshot() == empty


def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
        rec.record("op", v)
    assert rec.mean("op") == 55
    assert rec.percentile("op", 0) == 10
    assert rec.percentile("op", 100) == 100
    assert abs(rec.percentile("op", 50) - 55) < 1e-9
    assert rec.count("op") == 10


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert math.isnan(rec.mean("nope"))
    assert math.isnan(rec.percentile("nope", 95))
