"""Tests for repro.telemetry: the virtual-time sampler, the series/v1
document, Prometheus exposition, the /metrics endpoint, `repro top`,
and the MetricsRegistry bridge (log-histogram merge).

The integration scenario mirrors the pinned cluster golden
(tests/test_golden_differential.py): three tenants on two devices with a
mid-run crash on device 0, so the series captures a full
``up 1 → 0 → 1`` outage.  Its series is pinned byte-for-byte in
tests/golden/telemetry_series.jsonl; regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_telemetry.py \
        --update-golden
"""

from __future__ import annotations

import json
import urllib.request
from pathlib import Path

import pytest

from repro.cluster import TenantSpec, serve_cluster
from repro.faults import DeviceCrash
from repro.telemetry import (
    TelemetrySampler,
    load_series,
    make_server,
    parse_exposition,
    render_prometheus,
    render_top,
    serve_in_thread,
    sparkline,
    to_lines,
    validate_series,
    write_series,
)
from repro.telemetry import sampler as telem
from repro.trace.metrics import (
    LogHistogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)
from tests.conftest import SMALL_GEOMETRY

GOLDEN_SERIES_PATH = (
    Path(__file__).parent / "golden" / "telemetry_series.jsonl"
)

SAMPLE_NS = 500_000.0  # 0.5 ms virtual


def _tenants():
    return [
        TenantSpec(name="a", workload="mixed", rate_ops_s=4_000.0,
                   slo_ms=5.0, n_ops=18, device=0),
        TenantSpec(name="b", workload="light", rate_ops_s=1_000.0,
                   slo_ms=2.0, n_ops=12, device=1),
        TenantSpec(name="c", workload="mixed", rate_ops_s=2_000.0,
                   slo_ms=4.0, n_ops=14, device=0),
    ]


def _faulted_run(**kw):
    return serve_cluster(
        _tenants(), fs_name="bytefs", n_devices=2, seed=42,
        geometry=SMALL_GEOMETRY, queue_depth=2, max_queue=256,
        sched="drr", faults=[DeviceCrash(0, after_ops=9)],
        sample_every_ns=SAMPLE_NS, **kw,
    )


@pytest.fixture(scope="module")
def faulted():
    return _faulted_run()


# ---------------------------------------------------------------------- #
# sampler unit behavior
# ---------------------------------------------------------------------- #

class _StubQueue:
    def __init__(self):
        self.slots = []


def _stub_sampler(**kw):
    s = TelemetrySampler(t0=1000.0, sample_every_ns=100.0, **kw)
    s.add_device(
        0, gauges=lambda: {"g": 7}, queue=_StubQueue(), tenants=[],
        stats=__import__(
            "repro.stats.traffic", fromlist=["TrafficStats"]
        ).TrafficStats(),
        time_of=lambda tid: 0.0,
    )
    return s


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        TelemetrySampler(t0=0.0, sample_every_ns=0)


def test_sampler_rejects_duplicate_device():
    s = _stub_sampler()
    with pytest.raises(ValueError):
        s.add_device(0, lambda: {}, _StubQueue(), [], None, lambda t: 0.0)


def test_sampler_emits_every_crossed_boundary_once():
    s = _stub_sampler()
    s.advance(0, 1250.0)   # boundaries 1000, 1100, 1200 (inclusive <= t)
    assert [r["t_ns"] for r in s.rows] == [1000.0, 1100.0, 1200.0]
    s.advance(0, 1250.0)   # idempotent: no boundary re-emitted
    assert len(s.rows) == 3
    s.advance(0, 1300.0)   # boundary exactly at t is included
    assert s.rows[-1]["t_ns"] == 1300.0
    assert all(r["metrics"]["g"] == 7 for r in s.rows)


def test_sampler_outage_window_emits_up_zero():
    s = _stub_sampler()
    s.advance(0, 1000.0)
    s.mark_outage(0, t_down=1050.0, t_up=1340.0)
    ups = {r["t_ns"]: r["metrics"]["up"] for r in s.rows}
    # boundaries in [t_down, t_up) are down; 1400 (> t_up) not emitted yet
    assert ups == {1000.0: 1, 1100.0: 0, 1200.0: 0, 1300.0: 0}
    s.advance(0, 1400.0)
    assert s.rows[-1]["metrics"]["up"] == 1
    assert s.outages == [
        {"device": 0, "t_down_ns": 1050.0, "t_up_ns": 1340.0}
    ]


def test_enabled_guard_is_off_by_default_and_restores():
    assert telem.ENABLED is False and telem.active() is None
    s = _stub_sampler()
    telem.activate(s)
    try:
        assert telem.ENABLED is True and telem.active() is s
    finally:
        telem.deactivate()
    assert telem.ENABLED is False and telem.active() is None


# ---------------------------------------------------------------------- #
# series/v1 schema
# ---------------------------------------------------------------------- #

def test_series_roundtrip_and_validation(faulted, tmp_path):
    path = tmp_path / "series.jsonl"
    n = write_series(faulted.telemetry, str(path))
    recs = load_series(str(path))
    assert len(recs) == n + 1  # header + rows
    assert validate_series(recs) == []
    # raw JSONL lines validate identically
    lines = path.read_text(encoding="utf-8").splitlines()
    assert validate_series(lines) == []
    header = recs[0]
    assert header["schema"] == "repro.telemetry.series/v1"
    assert header["sample_every_ns"] == SAMPLE_NS
    assert header["fs"] == "bytefs" and header["seed"] == 42


def test_series_validator_rejects_malformed_documents():
    assert validate_series([]) != []
    assert any(
        "schema" in p
        for p in validate_series([{"schema": "nope", "sample_every_ns": 1,
                                   "t0_ns": 0, "outages": []}])
    )
    header = {"schema": "repro.telemetry.series/v1", "sample_every_ns": 1,
              "t0_ns": 0, "t_end_ns": None, "outages": []}
    bad_scope = [header, {"t_ns": 1, "scope": "galaxy", "metrics": {"x": 1}}]
    assert any("scope" in p for p in validate_series(bad_scope))
    out_of_order = [
        header,
        {"t_ns": 2, "scope": "device", "device": 0, "metrics": {"up": 1}},
        {"t_ns": 1, "scope": "device", "device": 0, "metrics": {"up": 1}},
    ]
    assert any("out of order" in p for p in validate_series(out_of_order))
    nan_metric = [
        header,
        {"t_ns": 1, "scope": "device", "device": 0,
         "metrics": {"g": float("nan")}},
    ]
    assert any("finite" in p for p in validate_series(nan_metric))


def test_crash_recovery_visible_as_up_transitions(faulted):
    rows = faulted.telemetry.sorted_rows()
    ups = [
        r["metrics"]["up"] for r in rows
        if r["scope"] == "device" and r["device"] == 0
    ]
    # the outage is a contiguous 0-window with 1s on both sides
    assert 0 in ups and ups[0] == 1 and ups[-1] == 1
    first0, last0 = ups.index(0), len(ups) - 1 - ups[::-1].index(0)
    assert all(u == 0 for u in ups[first0:last0 + 1])
    [outage] = faulted.telemetry.outages
    assert outage["device"] == 0
    assert outage["t_down_ns"] < outage["t_up_ns"]
    # device 1 never went down
    assert all(
        r["metrics"]["up"] == 1 for r in rows
        if r["scope"] == "device" and r["device"] == 1
    )


def test_telemetry_series_byte_identical_across_runs(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_series(_faulted_run().telemetry, str(a))
    write_series(_faulted_run().telemetry, str(b))
    assert a.read_bytes() == b.read_bytes()


def test_telemetry_does_not_perturb_the_simulation():
    """Zero-cost discipline: the result document of a sampled run is
    byte-identical to the same run with telemetry off."""
    with_t = _faulted_run()
    without = serve_cluster(
        _tenants(), fs_name="bytefs", n_devices=2, seed=42,
        geometry=SMALL_GEOMETRY, queue_depth=2, max_queue=256,
        sched="drr", faults=[DeviceCrash(0, after_ops=9)],
    )
    assert without.telemetry is None
    assert json.dumps(with_t.to_json(), sort_keys=True) == \
        json.dumps(without.to_json(), sort_keys=True)


@pytest.fixture(scope="module")
def series_golden(request, faulted):
    lines = "\n".join(to_lines(faulted.telemetry)) + "\n"
    if request.config.getoption("--update-golden"):
        GOLDEN_SERIES_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_SERIES_PATH.write_text(lines, encoding="utf-8")
    if not GOLDEN_SERIES_PATH.exists():
        pytest.fail(
            f"{GOLDEN_SERIES_PATH} missing; generate it with "
            "--update-golden"
        )
    return lines


def test_series_matches_golden_fixture(series_golden):
    assert series_golden == GOLDEN_SERIES_PATH.read_text(
        encoding="utf-8"
    ), (
        "telemetry series drifted from tests/golden/"
        "telemetry_series.jsonl — a serve/device/sampler change altered "
        "the sampled timeline; recalibrate deliberately with "
        "--update-golden, never to make a red change pass"
    )


# ---------------------------------------------------------------------- #
# Prometheus exposition + HTTP endpoint
# ---------------------------------------------------------------------- #

def test_prometheus_exposition_well_formed(faulted):
    text = render_prometheus(faulted.telemetry)
    assert parse_exposition(text) == []
    assert "# TYPE repro_device_up gauge" in text
    # cumulative metrics get the counter convention
    assert "# TYPE repro_tenant_served_total counter" in text
    assert 'repro_tenant_served_total{device="0",tenant="a"}' in text
    # run metadata rides on the info pseudo-metric
    assert 'repro_run_info{' in text and 'fs="bytefs"' in text


def test_prometheus_render_deduplicates_series_rows(faulted, tmp_path):
    path = tmp_path / "s.jsonl"
    write_series(faulted.telemetry, str(path))
    recs = load_series(str(path))
    text = render_prometheus(recs[1:])
    assert parse_exposition(text) == []


def test_parse_exposition_flags_malformed_text():
    assert parse_exposition("") == ["no sample lines"]
    assert any(
        "malformed sample" in p
        for p in parse_exposition("metric{ 1\n")
    )
    dup = "m 1\nm 2\n"
    assert any("duplicate series" in p for p in parse_exposition(dup))
    late_type = "m 1\n# TYPE m gauge\n"
    assert any("after its samples" in p for p in parse_exposition(late_type))
    bad_type = "# TYPE m thingy\nm 1\n"
    assert any("unknown TYPE" in p for p in parse_exposition(bad_type))


def test_metrics_endpoint_serves_exposition_and_health(faulted):
    text = render_prometheus(faulted.telemetry)
    srv = make_server(lambda: text, port=0)
    serve_in_thread(srv)
    try:
        host, port = srv.server_address[:2]
        base = f"http://{host}:{port}"
        with urllib.request.urlopen(f"{base}/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert resp.read().decode("utf-8") == text
        with urllib.request.urlopen(f"{base}/healthz") as resp:
            assert json.loads(resp.read())["status"] == "ok"
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{base}/nope")
        assert exc.value.code == 404
    finally:
        srv.shutdown()
        srv.server_close()


# ---------------------------------------------------------------------- #
# repro top
# ---------------------------------------------------------------------- #

def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == "▁▁▁"
    line = sparkline([0, 1, 2, 3], width=60)
    assert line[0] == "▁" and line[-1] == "█" and len(line) == 4
    assert len(sparkline(list(range(1000)), width=60)) == 60


def test_render_top_report(faulted, tmp_path):
    path = tmp_path / "s.jsonl"
    write_series(faulted.telemetry, str(path))
    doc = faulted.to_json()
    report = render_top(doc, series=load_series(str(path)), top_n=2)
    assert "top 2 tenants by p99" in report
    assert "per-device utilization timeline" in report
    assert "dev0 backlog" in report and "dev1 backlog" in report
    assert "outages (up 1 → 0 → 1)" in report
    # without a series the report says how to get one
    assert "--telemetry-out" in render_top(doc)


def test_cli_top_command(faulted, tmp_path, capsys):
    from repro.cli import main

    run_path = tmp_path / "run.json"
    series_path = tmp_path / "series.jsonl"
    run_path.write_text(json.dumps(faulted.to_json()), encoding="utf-8")
    write_series(faulted.telemetry, str(series_path))
    assert main(["top", str(run_path), "--series", str(series_path)]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "GC storms" in out


# ---------------------------------------------------------------------- #
# MetricsRegistry bridge: log-histogram edges + deterministic merge
# ---------------------------------------------------------------------- #

def test_histogram_zero_samples_quantiles():
    h = LogHistogram()
    assert h.count == 0
    assert h.percentile(50) == 0.0 and h.percentile(99) == 0.0
    assert h.mean == 0.0


def test_histogram_one_sample_quantiles():
    h = LogHistogram()
    h.record(1500.0)
    lo, hi = bucket_bounds(bucket_index(1500.0))
    assert lo <= 1500.0 < hi
    # every quantile of a single sample is its bucket representative
    rep = h.percentile(50)
    assert rep == h.percentile(0) == h.percentile(99)
    assert lo <= rep <= hi
    assert h.min == h.max == 1500.0 and h.mean == 1500.0


@pytest.mark.parametrize("value", [0.5, 1.0, 2.0, 4096.0, 2.0 ** 20])
def test_histogram_bucket_boundary_values(value):
    """Powers of two sit exactly on bucket edges: the index must be the
    *first* sub-bucket of the octave and the bounds must bracket the
    value half-open ([lo, hi))."""
    idx = bucket_index(value)
    lo, hi = bucket_bounds(idx)
    assert lo <= value < hi
    assert bucket_index(lo) == idx
    # one ulp under the boundary lands in the previous octave's last bucket
    import math
    under = math.nextafter(value, 0.0)
    assert bucket_index(under) == idx - 1


def test_histogram_merge_is_exact_and_order_independent():
    xs = [3.0, 17.0, 0.0, 250.0, 1.5, 9999.0]
    ys = [42.0, 0.5, 3.0, 1e6]
    direct = LogHistogram()
    for v in xs + ys:
        direct.record(v)
    a, b = LogHistogram(), LogHistogram()
    for v in xs:
        a.record(v)
    for v in ys:
        b.record(v)
    ab = LogHistogram().merge(a).merge(b)
    ba = LogHistogram().merge(b).merge(a)
    for m in (ab, ba):
        assert m.count == direct.count
        assert m.total == direct.total
        assert m.min == direct.min and m.max == direct.max
        assert m.zero_count == direct.zero_count
        assert m.buckets == direct.buckets
        assert m.percentile(99) == direct.percentile(99)


def test_registry_merge_is_deterministic():
    def build(samples):
        r = MetricsRegistry()
        for name, v in samples:
            r.histogram(name).record(v)
        return r

    r1 = build([("span.ftl.read", 10.0), ("span.fs.write", 20.0)])
    r1.bump("ops", 3)
    r2 = build([("span.ftl.read", 30.0), ("span.nand.program", 5.0)])
    r2.bump("ops", 4)
    r2.bump("gc", 1)
    merged = MetricsRegistry().merge(r1).merge(r2)
    assert merged.counter("ops") == 7 and merged.counter("gc") == 1
    assert merged.histogram_names() == [
        "span.fs.write", "span.ftl.read", "span.nand.program",
    ]
    assert merged.get("span.ftl.read").count == 2
    # merging in the opposite order serializes identically
    other = MetricsRegistry().merge(r2).merge(r1)
    assert json.dumps(merged.to_json(), sort_keys=True) == \
        json.dumps(other.to_json(), sort_keys=True)


def test_traced_run_bridges_layer_quantiles():
    result = serve_cluster(
        _tenants(), fs_name="bytefs", n_devices=2, seed=42,
        geometry=SMALL_GEOMETRY, queue_depth=2, max_queue=256,
        sched="drr", traced=True, sample_every_ns=SAMPLE_NS,
    )
    layer_rows = [
        r for r in result.telemetry.sorted_rows() if r["scope"] == "layer"
    ]
    assert layer_rows, "traced run must emit layer-quantile rows"
    layers = {r["layer"] for r in layer_rows}
    assert "device" in layers
    t_end = result.telemetry.t_end
    for r in layer_rows:
        assert r["t_ns"] == t_end
        m = r["metrics"]
        assert m["count"] > 0
        assert m["latency_p50_ns"] <= m["latency_p99_ns"]
    # the full document (header + layer rows) still validates
    assert validate_series(
        [json.loads(line) for line in to_lines(result.telemetry)]
    ) == []
