"""Cross-layer span tracing: span model, attribution, exporters, metrics.

Covers the acceptance criteria of the tracing tentpole:

* a traced ByteFS ``fsync`` produces a span tree whose root duration
  equals the ``LatencyRecorder`` latency for that op (± float epsilon),
  with synchronous children covering >= 95 % of the root;
* two identical seeded runs emit byte-identical JSONL;
* the disabled tracer is a zero-overhead guard (no tracer API is even
  entered when ``trace.ENABLED`` is False);
* an exported Chrome trace validates against the documented schema.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.bench.harness import run_workload
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.sim.clock import VirtualClock
from repro.stats.traffic import (
    Direction,
    Interface,
    LatencyRecorder,
    StructKind,
    TrafficStats,
)
from repro.trace import tracer as trace
from repro.trace.export import (
    to_chrome,
    to_chrome_json,
    to_jsonl,
    validate_chrome,
    validate_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.trace.metrics import (
    LogHistogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)
from repro.trace.report import (
    breakdown,
    critical_path,
    critical_path_profile,
    render_breakdown,
    render_critical_path,
)
from repro.trace.tracer import LANE_BACKGROUND, LANE_SYNC, Tracer
from repro.workloads.base import Workload
from tests.conftest import SMALL_GEOMETRY


class FsyncHeavy(Workload):
    """pwrite+fsync pairs: every other measured op is a durability op."""

    name = "fsync-heavy"

    def __init__(self, n_ops: int = 4, n_threads: int = 1, seed: int = 42):
        super().__init__(seed)
        self.n_ops = n_ops
        self.n_threads = n_threads

    def thread_ops(self, fs, tid):
        fd = fs.open(f"/fh-{tid}", O_CREAT | O_RDWR)
        for i in range(self.n_ops):
            fs.pwrite(fd, i * 256, bytes([i % 251] * 256))
            yield "pwrite"
            fs.fsync(fd)
            yield "fsync"
        fs.close(fd)


def traced_run(fs_name: str = "bytefs", n_threads: int = 1, n_ops: int = 4):
    return run_workload(
        fs_name,
        FsyncHeavy(n_ops=n_ops, n_threads=n_threads),
        geometry=SMALL_GEOMETRY,
        traced=True,
    )


def spans_by_id(tracer: Tracer):
    return {s.span_id: s for s in tracer.spans}


def children_of(tracer: Tracer):
    kids = {}
    for s in tracer.spans:
        kids.setdefault(s.parent_id, []).append(s)
    return kids


# ---------------------------------------------------------------------- #
# span tree structure through a full ByteFS fsync
# ---------------------------------------------------------------------- #

def test_fsync_span_tree_nesting_and_parentage():
    result = traced_run()
    tracer = result.trace
    assert tracer is not None and tracer.spans

    by_id = spans_by_id(tracer)
    # Every non-root parent id must resolve, and children must nest
    # inside their parent's time window (background lanes may overhang
    # the end but never start before the parent).
    for span in tracer.spans:
        if span.parent_id == 0:
            continue
        parent = by_id[span.parent_id]
        assert parent.tid == span.tid
        assert span.t_start >= parent.t_start - 1e-9
        if span.lane == LANE_SYNC:
            assert span.t_end <= parent.t_end + 1e-9

    # An fsync root reaches every layer of the ByteFS write path: the
    # VFS syscall, the MMIO link, and the firmware transaction engine.
    kids = children_of(tracer)
    fsync_roots = [s for s in tracer.roots() if s.op == "fsync"]
    assert fsync_roots, "no fsync root spans recorded"
    layers = set()

    def collect(span):
        layers.add(span.layer)
        for kid in kids.get(span.span_id, ()):
            collect(kid)

    for root in fsync_roots:
        collect(root)
    assert {"workload", "vfs", "device", "link", "firmware"} <= layers


def test_root_duration_equals_recorded_latency():
    result = traced_run()
    tracer = result.trace
    # Roots complete in the same order LatencyRecorder.record is called,
    # so the k-th root named `op` pairs with the k-th sample of `op`.
    samples = {
        op: list(result.latency._samples[op]) for op in result.latency.ops()
    }
    seen = {op: 0 for op in samples}
    # Generator-exhaustion tails are kept as explicit "drain" roots (no
    # latency sample is recorded for them); every other root pairs up.
    roots = [s for s in tracer.roots() if s.op != "drain"]
    assert len(roots) == result.ops
    for root in roots:
        k = seen[root.op]
        seen[root.op] += 1
        assert root.duration_ns == pytest.approx(
            samples[root.op][k], abs=1e-6
        )


def test_fsync_children_cover_95_percent_of_root():
    result = traced_run()
    tracer = result.trace
    kids = children_of(tracer)
    for root in tracer.roots():
        if root.op != "fsync" or root.duration_ns <= 0:
            continue
        sync_child_ns = sum(
            k.duration_ns for k in kids.get(root.span_id, ())
            if k.lane == LANE_SYNC
        )
        assert sync_child_ns >= 0.95 * root.duration_ns


def test_breakdown_attributes_nearly_all_fsync_time():
    result = traced_run()
    acc = breakdown(result.trace)["fsync"]
    assert acc.count > 0 and acc.total_ns > 0
    covered = acc.attributed_ns() + sum(acc.wait_ns.values())
    assert covered == pytest.approx(acc.total_ns, rel=0.05)


def test_critical_path_steps_sum_to_root_duration():
    result = traced_run()
    tracer = result.trace
    root = max(tracer.roots(), key=lambda s: s.duration_ns)
    path = critical_path(tracer, root)
    assert path
    assert sum(step.ns for step in path) == pytest.approx(
        root.duration_ns, abs=1e-6
    )
    profile = critical_path_profile(tracer)
    assert profile and all(ns >= 0 for _, ns, _ in profile)


def test_render_reports_are_text():
    result = traced_run()
    text = render_breakdown(result.trace)
    assert "fsync" in text and "%" in text
    text = render_critical_path(result.trace)
    assert "critical path" in text


def test_multithreaded_spans_stay_on_their_timeline():
    result = traced_run(n_threads=2, n_ops=3)
    tracer = result.trace
    tids = {s.tid for s in tracer.spans}
    assert tids == {0, 1}
    by_id = spans_by_id(tracer)
    for span in tracer.spans:
        if span.parent_id:
            assert by_id[span.parent_id].tid == span.tid


def test_resource_waits_attributed_under_contention():
    # Two threads share the firmware core and the PCIe link; queueing
    # must surface as span waits, not vanish into layer self time.
    result = traced_run(n_threads=2, n_ops=4)
    waited = {
        key
        for span in result.trace.spans if span.waits
        for key in span.waits
    }
    assert waited, "no resource waits recorded under contention"
    acc = breakdown(result.trace)["fsync"]
    assert any(k.startswith("wait:") for k in acc.wait_ns)


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #

def test_identical_seeded_runs_emit_byte_identical_jsonl():
    meta = {"fs": "bytefs", "workload": "fsync-heavy"}
    a = to_jsonl(traced_run(n_threads=2).trace, meta)
    b = to_jsonl(traced_run(n_threads=2).trace, meta)
    assert a == b
    assert to_chrome_json(traced_run().trace) == \
        to_chrome_json(traced_run().trace)


# ---------------------------------------------------------------------- #
# disabled-tracer zero-overhead guard
# ---------------------------------------------------------------------- #

def test_tracing_disabled_by_default_and_off_cost(monkeypatch):
    assert trace.ENABLED is False
    assert trace.active() is None

    def _boom(*a, **k):  # pragma: no cover - must never run
        raise AssertionError("tracer API entered while tracing disabled")

    # Poison every recording entry point: instrumented call sites guard
    # on trace.ENABLED, so an untraced run must not touch any of these.
    for name in ("begin", "end", "span_at", "event", "note_wait"):
        monkeypatch.setattr(trace, name, _boom)
    monkeypatch.setattr(trace, "AUTO", False)
    result = run_workload(
        "bytefs", FsyncHeavy(n_ops=2), geometry=SMALL_GEOMETRY
    )
    assert result.ops == 4
    assert result.trace is None


def test_activated_context_restores_previous_state():
    clock = VirtualClock(1)
    tracer = Tracer(clock)
    assert trace.ENABLED is False
    with trace.activated(tracer):
        assert trace.ENABLED is True
        assert trace.active() is tracer
    assert trace.ENABLED is False
    assert trace.active() is None


def test_auto_env_attaches_metrics_only_tracer(monkeypatch):
    monkeypatch.setattr(trace, "AUTO", True)
    result = run_workload(
        "bytefs", FsyncHeavy(n_ops=2), geometry=SMALL_GEOMETRY
    )
    tracer = result.trace
    assert tracer is not None
    assert tracer.keep_spans is False
    assert tracer.spans == []  # no span retention...
    names = tracer.metrics.histogram_names("span.")
    assert any(n == "span.vfs.fsync" for n in names)  # ...metrics only
    assert tracer.metrics.histogram("span.vfs.fsync").count > 0


# ---------------------------------------------------------------------- #
# tracer unit behaviour
# ---------------------------------------------------------------------- #

def test_exception_unwind_closes_abandoned_children():
    clock = VirtualClock(1)
    tracer = Tracer(clock)
    outer = tracer.begin("a", "outer")
    tracer.begin("b", "inner")
    clock.advance(10.0)
    # inner was abandoned by an exception; ending the outer span must
    # close it first so the stack stays balanced.
    tracer.end(outer)
    assert tracer.open_depth() == 0
    assert [s.op for s in tracer.spans] == ["inner", "outer"]
    assert all(s.t_end == 10.0 for s in tracer.spans)


def test_end_on_empty_stack_and_foreign_span_are_noops():
    clock = VirtualClock(1)
    tracer = Tracer(clock)
    assert tracer.end() is None
    sp = tracer.begin("a", "x")
    tracer.end(sp)
    assert tracer.end(sp) is None  # already closed


def test_background_span_and_orphan_waits():
    clock = VirtualClock(1)
    tracer = Tracer(clock)
    tracer.note_wait("flash", 5.0, 1.0)  # no open span
    assert tracer.orphan_waits == {"flash": 5.0}
    sp = tracer.begin("ftl", "write")
    tracer.note_wait("flash", 3.0, 1.0)
    tracer.note_wait("flash", 2.0, 1.0)
    tracer.span_at("nand", "program", 100.0, 200.0, background=True)
    tracer.end(sp)
    assert sp.waits == {"flash": 5.0}
    nand = [s for s in tracer.spans if s.layer == "nand"][0]
    assert nand.lane == LANE_BACKGROUND
    assert nand.parent_id == sp.span_id
    assert nand.duration_ns == 100.0


def test_point_events_carry_parent_and_metrics():
    clock = VirtualClock(1)
    tracer = Tracer(clock)
    sp = tracer.begin("firmware", "byte_read")
    tracer.event("firmware", "log_hit", lpa=7)
    tracer.end(sp)
    assert len(tracer.events) == 1
    ev = tracer.events[0]
    assert ev.parent_id == sp.span_id
    assert ev.attrs == {"lpa": 7}
    assert tracer.metrics.counter("event.firmware.log_hit") == 1


def test_close_all_flushes_open_stacks():
    clock = VirtualClock(2)
    tracer = Tracer(clock)
    tracer.begin("a", "t0")
    clock.switch(1)
    tracer.begin("a", "t1")
    tracer.close_all()
    assert tracer.open_depth(0) == 0 and tracer.open_depth(1) == 0
    assert {s.op for s in tracer.spans} == {"t0", "t1"}


# ---------------------------------------------------------------------- #
# exporters and schema validation
# ---------------------------------------------------------------------- #

def test_chrome_export_is_valid_and_loads_as_json(tmp_path):
    result = traced_run(n_threads=2, n_ops=3)
    path = tmp_path / "trace.json"
    write_chrome(result.trace, path, {"fs": "bytefs"})
    doc = json.loads(path.read_text())
    assert validate_chrome(doc) == []
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"] == {"fs": "bytefs"}
    # One pid per simulated thread, named via metadata events.
    names = [
        ev for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    ]
    assert {ev["args"]["name"] for ev in names} == {
        "sim-thread-0", "sim-thread-1"
    }
    # Complete events use microseconds: spot-check one against its span.
    xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    span = result.trace.spans[0]
    match = [e for e in xs if e["args"]["id"] == span.span_id][0]
    assert match["ts"] == pytest.approx(span.t_start / 1000.0)
    assert match["dur"] == pytest.approx(span.duration_ns / 1000.0)


def test_jsonl_export_round_trips_and_validates(tmp_path):
    result = traced_run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(result.trace, path, {"workload": "fsync-heavy"})
    text = path.read_text()
    assert validate_jsonl(text) == []
    lines = [json.loads(l) for l in text.splitlines()]
    assert lines[0]["type"] == "meta"
    assert lines[0]["workload"] == "fsync-heavy"
    spans = [r for r in lines if r["type"] == "span"]
    assert len(spans) == len(result.trace.spans)
    ids = {r["id"] for r in spans}
    assert all(r["parent"] == 0 or r["parent"] in ids for r in spans)


def test_validators_reject_malformed_documents():
    assert validate_chrome("{not json")
    assert validate_chrome({"traceEvents": "nope"})
    assert validate_chrome(
        {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "ts": 0.0,
                          "name": "x"}],
         "displayTimeUnit": "ns"}
    )  # complete event without dur
    assert validate_jsonl("") == ["empty trace"]
    assert validate_jsonl('{"type": "span"}\n')  # missing meta header
    good = to_jsonl(traced_run(n_ops=1).trace)
    assert validate_jsonl(good) == []
    assert validate_jsonl(good + '{"type": "mystery"}\n')


# ---------------------------------------------------------------------- #
# log-scaled histograms
# ---------------------------------------------------------------------- #

def test_bucket_bounds_invert_bucket_index():
    for v in (1e-3, 0.5, 1.0, 3.7, 1024.0, 123456.789):
        lo, hi = bucket_bounds(bucket_index(v))
        assert lo <= v < hi


def test_log_histogram_tracks_exact_count_sum_min_max():
    h = LogHistogram()
    data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    for v in data:
        h.record(v)
    assert h.count == len(data)
    assert h.total == sum(data)
    assert h.min == 1.0 and h.max == 9.0
    assert h.mean == pytest.approx(sum(data) / len(data))


def test_log_histogram_percentile_bounded_relative_error():
    h = LogHistogram()
    data = [float(i) for i in range(1, 2000)]
    for v in data:
        h.record(v)
    for pct in (50, 90, 95, 99):
        exact = data[int(round((pct / 100.0) * (len(data) - 1)))]
        approx = h.percentile(pct)
        assert abs(approx - exact) / exact < 0.05


def test_log_histogram_zero_and_empty():
    h = LogHistogram()
    assert h.percentile(50) == 0.0
    h.record(0.0)
    h.record(0.0)
    h.record(10.0)
    assert h.zero_count == 2
    assert h.percentile(10) == 0.0
    d = h.to_dict()
    assert d["count"] == 3 and d["zero_count"] == 2
    json.dumps(d)  # serialisable


def test_metrics_registry_names_and_json():
    reg = MetricsRegistry()
    reg.histogram("span.b").record(1.0)
    reg.histogram("span.a").record(2.0)
    reg.bump("events", 3)
    assert reg.histogram_names("span.") == ["span.a", "span.b"]
    assert reg.get("span.a").count == 1
    assert reg.get("missing") is None
    assert reg.counter("events") == 3
    doc = reg.to_json()
    assert list(doc["histograms"]) == ["span.a", "span.b"]
    json.dumps(doc)


# ---------------------------------------------------------------------- #
# satellite: LatencyRecorder cached percentiles + summary
# ---------------------------------------------------------------------- #

def test_latency_recorder_summary_matches_percentile():
    rec = LatencyRecorder()
    for v in (5.0, 1.0, 3.0, 2.0, 4.0):
        rec.record("op", v)
    s = rec.summary("op")
    assert s["count"] == 5
    assert s["mean"] == pytest.approx(3.0)
    assert s["p50"] == rec.percentile("op", 50)
    assert s["p95"] == rec.percentile("op", 95)
    assert s["p99"] == rec.percentile("op", 99)


def test_latency_recorder_cache_invalidated_on_record():
    rec = LatencyRecorder()
    rec.record("op", 10.0)
    assert rec.percentile("op", 50) == 10.0  # populates the cache
    rec.record("op", 30.0)
    assert rec.percentile("op", 50) == 20.0  # cache rebuilt, not stale
    rec.reset()
    assert math.isnan(rec.percentile("op", 50))


def test_latency_recorder_summary_empty_op():
    s = LatencyRecorder().summary("never")
    assert s["count"] == 0
    assert all(math.isnan(s[k]) for k in ("mean", "p50", "p95", "p99"))


# ---------------------------------------------------------------------- #
# satellite: JSON-serialisable stats and run reports
# ---------------------------------------------------------------------- #

def test_traffic_stats_to_json_uses_string_keys():
    stats = TrafficStats()
    stats.record_host_ssd(
        StructKind.DATA, Direction.WRITE, Interface.BYTE, 64
    )
    stats.record_flash(StructKind.OTHER, Direction.READ, 4096)
    stats.record_app(Direction.WRITE, 64)
    doc = stats.to_json()
    assert doc["host_ssd"] == {"data:write:byte": 64}
    assert doc["flash"] == {"other:read": 4096}
    assert doc["app"] == {"write": 64}
    json.dumps(doc)


def test_run_result_to_json_is_serialisable():
    result = traced_run(n_ops=2)
    doc = result.to_json()
    text = json.dumps(doc, sort_keys=True)
    parsed = json.loads(text)
    assert parsed["fs"] == "bytefs"
    assert parsed["ops"] == result.ops == 4
    assert parsed["latency"]["fsync"]["count"] == 2
    assert parsed["traffic"]["host_ssd"]
    assert parsed["bytes"]["app_write"] > 0
