"""POSIX semantics tests parametrized over every file system.

These are integration tests: each operation goes through the full stack
(VFS -> FS -> device -> firmware -> FTL -> flash) and data is actually
serialized, so they catch layout and persistence bugs in any layer.
"""

import pytest

from repro.fs.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    ReadOnly,
)
from repro.fs.vfs import (
    O_APPEND,
    O_CREAT,
    O_DIRECT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)


def test_create_write_read(any_fs_or_variant):
    fs = any_fs_or_variant
    fd = fs.open("/a.txt", O_CREAT | O_RDWR)
    assert fs.write(fd, b"hello world") == 11
    assert fs.pread(fd, 0, 11) == b"hello world"
    assert fs.pread(fd, 6, 5) == b"world"
    fs.close(fd)


def test_read_past_eof_truncated(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"12345")
    assert fs.pread(fd, 3, 100) == b"45"
    assert fs.pread(fd, 5, 10) == b""
    fs.close(fd)


def test_sequential_read_uses_position(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"abcdef")
    fs.lseek(fd, 0)
    assert fs.read(fd, 3) == b"abc"
    assert fs.read(fd, 3) == b"def"
    fs.close(fd)


def test_append_mode(any_fs):
    fs = any_fs
    fd = fs.open("/log", O_CREAT | O_RDWR)
    fs.write(fd, b"AAA")
    fs.close(fd)
    fd = fs.open("/log", O_RDWR | O_APPEND)
    fs.write(fd, b"BBB")
    assert fs.pread(fd, 0, 6) == b"AAABBB"
    fs.close(fd)


def test_overwrite_middle(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 10000)
    fs.pwrite(fd, 5000, b"MARK")
    data = fs.pread(fd, 4998, 8)
    assert data == b"xxMARKxx"
    assert fs.stat("/f").size == 10000
    fs.close(fd)


def test_sparse_hole_reads_zero(any_fs):
    fs = any_fs
    fd = fs.open("/sparse", O_CREAT | O_RDWR)
    fs.pwrite(fd, 20000, b"end")
    assert fs.stat("/sparse").size == 20003
    assert fs.pread(fd, 100, 10) == bytes(10)
    assert fs.pread(fd, 20000, 3) == b"end"
    fs.close(fd)


def test_large_file_multi_extent(any_fs):
    fs = any_fs
    fd = fs.open("/big", O_CREAT | O_RDWR)
    blob = bytes(range(256)) * 1024  # 256 KB
    fs.write(fd, blob)
    fs.fsync(fd)
    assert fs.pread(fd, 0, len(blob)) == blob
    assert fs.pread(fd, 123_456, 1000) == blob[123_456:124_456]
    fs.close(fd)


def test_truncate_shrink_and_grow(any_fs):
    fs = any_fs
    fd = fs.open("/t", O_CREAT | O_RDWR)
    fs.write(fd, b"A" * 9000)
    fs.ftruncate(fd, 100)
    assert fs.stat("/t").size == 100
    assert fs.pread(fd, 0, 200) == b"A" * 100
    fs.ftruncate(fd, 5000)
    assert fs.stat("/t").size == 5000
    fs.close(fd)


def test_open_trunc_flag(any_fs):
    fs = any_fs
    fd = fs.open("/t", O_CREAT | O_RDWR)
    fs.write(fd, b"data")
    fs.close(fd)
    fd = fs.open("/t", O_RDWR | O_TRUNC)
    assert fs.stat("/t").size == 0
    fs.close(fd)


def test_mkdir_listdir_rmdir(any_fs):
    fs = any_fs
    fs.mkdir("/d")
    fs.mkdir("/d/sub")
    fd = fs.open("/d/file", O_CREAT | O_RDWR)
    fs.close(fd)
    assert fs.listdir("/d") == ["file", "sub"]
    fs.unlink("/d/file")
    fs.rmdir("/d/sub")
    assert fs.listdir("/d") == []
    fs.rmdir("/d")
    assert not fs.exists("/d")


def test_rmdir_nonempty_fails(any_fs):
    fs = any_fs
    fs.mkdir("/d")
    fd = fs.open("/d/f", O_CREAT | O_RDWR)
    fs.close(fd)
    with pytest.raises(DirectoryNotEmpty):
        fs.rmdir("/d")


def test_nested_paths(any_fs):
    fs = any_fs
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.mkdir("/a/b/c")
    fd = fs.open("/a/b/c/deep.txt", O_CREAT | O_RDWR)
    fs.write(fd, b"deep")
    fs.close(fd)
    assert fs.stat("/a/b/c/deep.txt").size == 4
    assert fs.listdir("/a/b") == ["c"]


def test_rename_same_dir(any_fs):
    fs = any_fs
    fd = fs.open("/old", O_CREAT | O_RDWR)
    fs.write(fd, b"content")
    fs.close(fd)
    fs.rename("/old", "/new")
    assert not fs.exists("/old")
    fd = fs.open("/new", O_RDONLY)
    assert fs.pread(fd, 0, 7) == b"content"
    fs.close(fd)


def test_rename_across_dirs_and_overwrite(any_fs):
    fs = any_fs
    fs.mkdir("/src")
    fs.mkdir("/dst")
    fd = fs.open("/src/f", O_CREAT | O_RDWR)
    fs.write(fd, b"moved")
    fs.close(fd)
    fd = fs.open("/dst/f", O_CREAT | O_RDWR)
    fs.write(fd, b"will be replaced")
    fs.close(fd)
    fs.rename("/src/f", "/dst/f")
    assert fs.listdir("/src") == []
    fd = fs.open("/dst/f", O_RDONLY)
    assert fs.pread(fd, 0, 100) == b"moved"
    fs.close(fd)


def test_unlink_frees_and_name_reusable(any_fs):
    fs = any_fs
    for round_no in range(3):
        fd = fs.open("/cycle", O_CREAT | O_RDWR)
        fs.write(fd, bytes([round_no]) * 4096)
        fs.fsync(fd)
        fs.close(fd)
        fs.unlink("/cycle")
    assert not fs.exists("/cycle")


def test_errors(any_fs):
    fs = any_fs
    with pytest.raises(FileNotFound):
        fs.open("/missing", O_RDONLY)
    with pytest.raises(FileNotFound):
        fs.unlink("/missing")
    with pytest.raises(FileNotFound):
        fs.stat("/missing")
    fs.mkdir("/d")
    with pytest.raises(FileExists):
        fs.mkdir("/d")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.close(fd)
    with pytest.raises(FileExists):
        fs.open("/f", O_CREAT | O_EXCL | O_RDWR)
    with pytest.raises(IsADirectory):
        fs.unlink("/d")
    with pytest.raises(NotADirectory):
        fs.rmdir("/f")
    with pytest.raises(NotADirectory):
        fs.open("/f/child", O_CREAT | O_RDWR)
    with pytest.raises(BadFileDescriptor):
        fs.pread(999, 0, 1)
    with pytest.raises(InvalidArgument):
        fs.open("relative/path", O_RDONLY)


def test_write_to_readonly_fd_fails(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.close(fd)
    fd = fs.open("/f", O_RDONLY)
    with pytest.raises(ReadOnly):
        fs.write(fd, b"x")
    fs.close(fd)


def test_read_from_writeonly_fd_fails(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_WRONLY)
    with pytest.raises(ReadOnly):
        fs.pread(fd, 0, 1)
    fs.close(fd)


def test_fsync_and_fdatasync(any_fs):
    fs = any_fs
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 8192)
    fs.fsync(fd)
    fs.pwrite(fd, 0, b"y")
    fs.fdatasync(fd)
    assert fs.pread(fd, 0, 2) == b"yx"
    fs.close(fd)


def test_direct_io_small_and_large(any_fs):
    fs = any_fs
    fd = fs.open("/d", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 8192)
    fs.fsync(fd)
    fs.close(fd)
    fd = fs.open("/d", O_RDWR | O_DIRECT)
    fs.pwrite(fd, 128, b"tiny")          # <= 512 B: byte interface path
    fs.pwrite(fd, 4096, b"L" * 4096)     # full page: block path
    assert fs.pread(fd, 128, 4) == b"tiny"
    assert fs.pread(fd, 4096, 4) == b"LLLL"
    fs.close(fd)
    # buffered view stays coherent
    fd = fs.open("/d", O_RDONLY)
    assert fs.pread(fd, 128, 4) == b"tiny"
    fs.close(fd)


def test_stat_fields(any_fs):
    fs = any_fs
    fs.mkdir("/dir")
    fd = fs.open("/file", O_CREAT | O_RDWR)
    fs.write(fd, b"abc")
    fs.close(fd)
    s_dir = fs.stat("/dir")
    s_file = fs.stat("/file")
    assert s_dir.is_dir and not s_file.is_dir
    assert s_file.size == 3
    assert s_file.ino != s_dir.ino


def test_many_files_in_one_directory(any_fs):
    fs = any_fs
    fs.mkdir("/many")
    names = [f"file_{i:03d}" for i in range(120)]
    for name in names:
        fd = fs.open(f"/many/{name}", O_CREAT | O_RDWR)
        fs.write(fd, name.encode())
        fs.close(fd)
    assert fs.listdir("/many") == sorted(names)
    for name in names[::7]:
        fd = fs.open(f"/many/{name}", O_RDONLY)
        assert fs.pread(fd, 0, 100) == name.encode()
        fs.close(fd)


def test_sync_flushes_everything(any_fs):
    fs = any_fs
    fd = fs.open("/s", O_CREAT | O_RDWR)
    fs.write(fd, b"z" * 5000)
    fs.close(fd)
    fs.sync()
    fd = fs.open("/s", O_RDONLY)
    assert fs.pread(fd, 0, 5000) == b"z" * 5000
    fs.close(fd)
