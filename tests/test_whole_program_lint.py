"""Whole-program analysis tests: ProjectIndex-powered rule families.

Covers the planted fixtures under tests/lint_fixtures/ (CONC001/002/003,
SCH001, CS002), the crash-coverage map, SARIF output shape, the baseline
grandfathering workflow, cwd-independent repo-relative paths, byte-for-byte
deterministic JSON output, and suppression-comment placement on decorator
lines and multi-line signatures.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.findings import RULES
from repro.analysis.linter import lint_paths, render_json
from repro.analysis.sarif import render_sarif
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
PKG = Path(repro.__file__).resolve().parent


def _fixture_lint(name, rules=()):
    return lint_paths([FIXTURES / name], rules=list(rules))


def _rules(result):
    return [f.rule for f in result.findings]


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


# ---------------------------------------------------------------- CONC001

def test_conc001_fires_on_planted_module_cache():
    res = _fixture_lint("conc001", ["CONC001"])
    assert _rules(res) == ["CONC001"]
    assert "_RESULT_CACHE" in res.findings[0].message


def test_conc001_ignores_unmutated_module_constant(tmp_path):
    _write(tmp_path, "repro/cluster/registry.py", """\
        KNOWN_MODES = {"fifo": 1, "drr": 2}

        def lookup(name):
            return KNOWN_MODES[name]
        """)
    res = lint_paths([tmp_path], rules=["CONC001"])
    assert res.findings == []


def test_conc001_requires_serve_reachability(tmp_path):
    # Same mutated-global shape, but the module is not reachable from
    # any repro.cluster module in the linted set.
    _write(tmp_path, "repro/workloads/scratch.py", """\
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
        """)
    res = lint_paths([tmp_path], rules=["CONC001"])
    assert res.findings == []


def test_conc001_follows_import_closure(tmp_path):
    # The mutated global lives outside repro.cluster but is imported by
    # a cluster module, so the serve-path closure reaches it.
    _write(tmp_path, "repro/helpers/cachemod.py", """\
        _SHARED = {}

        def stash(key, value):
            _SHARED[key] = value
        """)
    _write(tmp_path, "repro/cluster/entry.py", """\
        import repro.helpers.cachemod

        def serve():
            repro.helpers.cachemod.stash("a", 1)
        """)
    res = lint_paths([tmp_path], rules=["CONC001"])
    assert _rules(res) == ["CONC001"]
    assert "_SHARED" in res.findings[0].message


# ---------------------------------------------------------------- CONC002

def test_conc002_fires_on_class_attr_and_mutable_default():
    res = _fixture_lint("conc002", ["CONC002"])
    assert _rules(res) == ["CONC002", "CONC002"]
    messages = " ".join(f.message for f in res.findings)
    assert "shared_queue" in messages
    assert "merge()" in messages


# ---------------------------------------------------------------- CONC003

def test_conc003_flags_partition_iteration_and_allows_sorted():
    res = _fixture_lint("conc003", ["CONC003"])
    assert _rules(res) == ["CONC003"]
    assert "by_shard" in res.findings[0].message
    # The sorted() loop in the same function stays clean.
    assert res.findings[0].line == 6


def test_conc003_reducer_fed_comprehension_is_clean(tmp_path):
    _write(tmp_path, "repro/cluster/totals.py", """\
        def total(by_shard):
            return sum(len(rows) for rows in by_shard.values())
        """)
    res = lint_paths([tmp_path], rules=["CONC003"])
    assert res.findings == []


# ---------------------------------------------------------------- SCH001

def test_sch001_fixture_drift_both_directions():
    res = _fixture_lint("sch001", ["SCH001"])
    assert _rules(res) == ["SCH001", "SCH001"]
    messages = " ".join(f.message for f in res.findings)
    assert "drifted" in messages  # emitted but never validated
    assert "ghost" in messages    # required but never emitted


def test_sch001_mutation_catches_unvalidated_key(tmp_path):
    # Mutation test: plant an extra key in the real result emitter and
    # prove the pass notices validate_cluster_run never checks it.
    source = (PKG / "cluster" / "result.py").read_text()
    planted = source.replace(
        '"seed": self.seed,',
        '"seed": self.seed,\n            "sneaky_debug": 1,',
        1,
    )
    assert planted != source, "anchor for the mutation test moved"
    _write(tmp_path, "repro/cluster/result.py", planted)
    res = lint_paths([tmp_path], rules=["SCH001"])
    assert any(
        f.rule == "SCH001" and "sneaky_debug" in f.message
        for f in res.findings
    )


# ---------------------------------------------------------- CS002 + coverage

def test_cs002_reports_minimal_chain():
    res = _fixture_lint("cs002", ["CS001", "CS002"])
    cs2 = [f for f in res.findings if f.rule == "CS002"]
    assert len(cs2) == 1
    assert "PlantedFW.mount() -> PlantedFW._replay()" in cs2[0].message
    assert "write_page" in cs2[0].message


def test_coverage_map_fixture_has_unguarded_chain():
    res = _fixture_lint("cs002", ["CS002"])
    cov = res.coverage
    assert cov is not None and cov["schema"] == "repro.lint.coverage/v1"
    unguarded = cov["primitives"]["write_page"]["unguarded"]
    assert [site["chain"] for site in unguarded] == [
        ["PlantedFW.mount", "PlantedFW._replay"]
    ]


def test_coverage_map_real_tree_has_no_unguarded_chains(tmp_path):
    out = tmp_path / "coverage.json"
    rc = main(["lint", str(PKG), "--coverage-out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.lint.coverage/v1"
    assert doc["primitives"]["write_page"]["guarded_sites"]
    for prim, entry in doc["primitives"].items():
        assert entry["unguarded"] == [], prim


def test_receiver_hint_keeps_other_class_guarded(tmp_path):
    # rogue() is unguarded but its hinted call only reaches Y.flush_meta,
    # which touches no device state; X.flush_meta keeps its single
    # guarded caller and must not be poisoned by the same-named call.
    _write(tmp_path, "repro/ssd/hinted.py", """\
        class X:
            def flush_meta(self):
                self.log.write_page(0, b"", None)

        class Y:
            def flush_meta(self):
                return None

        def guarded_driver(faults):
            faults.point("drv")
            x = X()
            x.flush_meta()

        def rogue():
            y = Y()
            y.flush_meta()
        """)
    res = lint_paths([tmp_path], rules=["CS001", "CS002"])
    assert res.findings == []


# ------------------------------------------------------------------- SARIF

def test_sarif_document_has_required_fields():
    res = _fixture_lint("cs002", ["CS001", "CS002"])
    doc = json.loads(render_sarif(res))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert [r["id"] for r in driver["rules"]] == sorted(RULES)
    assert run["results"], "fixture should produce results"
    for result in run["results"]:
        assert result["ruleId"] in RULES
        assert result["level"] == "error"
        assert result["message"]["text"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"]
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1


def test_cli_sarif_format(capsys):
    rc = main(["lint", str(FIXTURES / "conc003"), "--format=sarif"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "CONC003"


# ---------------------------------------------------------------- baseline

def test_baseline_grandfathers_known_and_fails_new(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    fixture1 = str(FIXTURES / "conc001")
    fixture2 = str(FIXTURES / "conc002")

    # Record the CONC001 fixture finding as accepted debt.
    rc = main(["lint", fixture1, "--baseline", str(baseline),
               "--update-baseline"])
    assert rc == 0
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == "repro.lint.baseline/v1"
    assert [e["rule"] for e in doc["findings"]] == ["CONC001"]
    capsys.readouterr()

    # Same tree + baseline: grandfathered, green.
    rc = main(["lint", fixture1, "--baseline", str(baseline),
               "--format=json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert [g["rule"] for g in payload["grandfathered"]] == ["CONC001"]

    # New findings (the CONC002 fixture) still fail the run.
    rc = main(["lint", fixture1, fixture2, "--baseline", str(baseline),
               "--format=json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["CONC002", "CONC002"]
    assert [g["rule"] for g in payload["grandfathered"]] == ["CONC001"]


def test_baseline_update_requires_path():
    with pytest.raises(SystemExit):
        main(["lint", str(FIXTURES / "conc001"), "--update-baseline"])


def test_baseline_rejects_malformed_document(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"schema": "wrong/v9", "findings": []}))
    with pytest.raises(SystemExit):
        main(["lint", str(FIXTURES / "conc001"), "--baseline", str(bad)])


# ------------------------------------------- path stability and determinism

def test_finding_paths_are_repo_relative_and_cwd_stable(tmp_path, monkeypatch):
    res_here = _fixture_lint("conc001", ["CONC001"])
    monkeypatch.chdir(tmp_path)
    res_there = _fixture_lint("conc001", ["CONC001"])
    assert render_json(res_here) == render_json(res_there)
    path = res_here.findings[0].path
    assert path == "tests/lint_fixtures/conc001/repro/cluster/planted_cache.py"


def test_double_run_json_output_is_byte_identical(capsys):
    args = ["lint", str(FIXTURES / "sch001"), str(FIXTURES / "cs002"),
            "--format=json"]
    main(args)
    first = capsys.readouterr().out
    main(args)
    second = capsys.readouterr().out
    assert first == second


# ------------------------------------------------------------- suppressions

def test_allow_comment_on_decorator_line_exempts_function(tmp_path):
    _write(tmp_path, "repro/ssd/deco.py", """\
        class FW:
            @staticmethod  # repro: allow[CS001]
            def recover(dev):
                dev.ftl.write_page(0, b"", None)
        """)
    res = lint_paths([tmp_path], rules=["CS001", "CS002"])
    assert res.findings == []


def test_allow_comment_on_multiline_signature_exempts_function(tmp_path):
    _write(tmp_path, "repro/ssd/multiline.py", """\
        class FW:
            def recover(
                self,
                deep,
            ):  # repro: allow[CS001]
                self.ftl.write_page(0, b"", None)
        """)
    res = lint_paths([tmp_path], rules=["CS001", "CS002"])
    assert res.findings == []


def test_unsuppressed_twin_still_fires(tmp_path):
    # Control for the two tests above: same shape, no allow comment.
    _write(tmp_path, "repro/ssd/twin.py", """\
        class FW:
            def recover(
                self,
                deep,
            ):
                self.ftl.write_page(0, b"", None)
        """)
    res = lint_paths([tmp_path], rules=["CS001"])
    assert _rules(res) == ["CS001"]


# ---------------------------------------------------------- real-tree gates

def test_serve_path_is_concurrency_clean():
    res = lint_paths([PKG], rules=["CONC001", "CONC002", "CONC003"])
    assert res.findings == []
    assert res.errors == []


def test_analysis_package_is_clean_without_suppressions():
    # Mirrors the CI self-check: the linter's own package must not rely
    # on allow[...] comments to pass its own rules.
    res = lint_paths([PKG / "analysis"], honor_suppressions=False)
    assert res.findings == []
    assert res.errors == []
