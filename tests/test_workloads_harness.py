"""Tests for workload generators, distributions, and the bench harness."""

import random

import pytest

from repro.bench.harness import RunResult, run_workload
from repro.bench.report import format_table, normalize
from repro.workloads import (
    MicroCreate,
    MicroDelete,
    MicroMkdir,
    MicroRmdir,
    OLTP,
    Varmail,
    Webproxy,
    Webserver,
    YCSB,
    ZipfianGenerator,
)
from repro.workloads.zipfian import LatestGenerator, UniformGenerator
from tests.conftest import SMALL_GEOMETRY


def test_zipfian_range_and_skew():
    rng = random.Random(1)
    gen = ZipfianGenerator(1000, rng=rng)
    samples = [gen.next() for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    # Zipf 0.99: item 0 should be far more popular than the median item.
    top = samples.count(0)
    assert top > 100


def test_latest_generator_prefers_recent():
    rng = random.Random(2)
    gen = LatestGenerator(100, rng=rng)
    samples = [gen.next() for _ in range(2000)]
    assert all(0 <= s < 100 for s in samples)
    recent = sum(1 for s in samples if s >= 90)
    old = sum(1 for s in samples if s < 10)
    assert recent > old


def test_uniform_generator_covers_range():
    gen = UniformGenerator(10, random.Random(3))
    samples = {gen.next() for _ in range(500)}
    assert samples == set(range(10))


@pytest.mark.parametrize(
    "wl",
    [
        MicroCreate(n_files=48, n_threads=4),
        MicroDelete(n_files=48, n_threads=4),
        MicroMkdir(n_dirs=48, n_threads=4),
        MicroRmdir(n_dirs=48, n_threads=4),
    ],
    ids=lambda w: w.name,
)
def test_micro_workloads_run_on_bytefs(wl):
    result = run_workload("bytefs", wl, geometry=SMALL_GEOMETRY)
    assert result.ops == 48
    assert result.elapsed_s > 0
    assert result.throughput > 0


@pytest.mark.parametrize(
    "wl_cls,kwargs",
    [
        (Varmail, dict(n_files=40, n_threads=4, ops_per_thread=4)),
        (Webproxy, dict(n_files=40, n_threads=4, ops_per_thread=3)),
        (Webserver, dict(n_files=40, n_threads=4, ops_per_thread=3)),
        (OLTP, dict(n_files=2, file_size=1 << 18, n_threads=4,
                    ops_per_thread=3)),
    ],
    ids=lambda x: getattr(x, "name", str(x)),
)
def test_macro_workloads_run_on_ext4(wl_cls, kwargs):
    result = run_workload("ext4", wl_cls(**kwargs), geometry=SMALL_GEOMETRY)
    assert result.ops > 0
    assert result.app_write > 0


def test_workloads_are_deterministic():
    r1 = run_workload(
        "bytefs", Varmail(n_files=20, n_threads=2, ops_per_thread=3),
        geometry=SMALL_GEOMETRY,
    )
    r2 = run_workload(
        "bytefs", Varmail(n_files=20, n_threads=2, ops_per_thread=3),
        geometry=SMALL_GEOMETRY,
    )
    assert r1.elapsed_s == r2.elapsed_s
    assert r1.host_write == r2.host_write


def test_ycsb_runs_and_reports_latency():
    wl = YCSB("A", n_records=60, n_ops=60, n_threads=2, value_size=64)
    result = run_workload("bytefs", wl, geometry=SMALL_GEOMETRY)
    assert result.ops == 60
    assert result.latency.count("read") > 0
    assert result.latency.count("update") > 0
    assert result.latency.percentile("read", 95) >= result.latency.percentile(
        "read", 5
    )


def test_ycsb_c_is_read_only():
    wl = YCSB("C", n_records=50, n_ops=40, n_threads=2, value_size=64)
    result = run_workload("ext4", wl, geometry=SMALL_GEOMETRY)
    assert result.latency.count("read") == 40
    assert result.latency.count("update") == 0


def test_ycsb_e_scans():
    wl = YCSB("E", n_records=50, n_ops=20, n_threads=2, value_size=64)
    result = run_workload("bytefs", wl, geometry=SMALL_GEOMETRY)
    assert result.latency.count("scan") > 0


def test_ycsb_unknown_letter_rejected():
    with pytest.raises(ValueError):
        YCSB("Z")


def test_setup_excluded_from_measurement():
    """MicroDelete's setup creates all the files; measured app writes
    must therefore be ~zero."""
    result = run_workload(
        "ext4", MicroDelete(n_files=24, n_threads=2),
        geometry=SMALL_GEOMETRY,
    )
    assert result.app_write == 0
    assert result.ops == 24


def test_run_result_amplification_properties():
    result = run_workload(
        "ext4", MicroCreate(n_files=24, n_threads=2),
        geometry=SMALL_GEOMETRY,
    )
    assert result.write_amplification > 1
    assert result.host_write == result.meta_write + result.data_write


def test_multithreaded_faster_than_single_threaded():
    r1 = run_workload(
        "bytefs", MicroCreate(n_files=96, n_threads=1),
        geometry=SMALL_GEOMETRY,
    )
    r8 = run_workload(
        "bytefs", MicroCreate(n_files=96, n_threads=8),
        geometry=SMALL_GEOMETRY,
    )
    assert r8.elapsed_s < r1.elapsed_s


def test_normalize_and_format_table():
    values = {"ext4": 2.0, "bytefs": 6.0}
    norm = normalize(values, "ext4")
    assert norm == {"ext4": 1.0, "bytefs": 3.0}
    table = format_table("T", ["sys", "x"], [("ext4", 1.0), ("bytefs", 3.0)])
    assert "ext4" in table and "3.00" in table


def test_bytefs_uses_byte_interface_ext4_does_not():
    wl_args = dict(n_files=48, n_threads=4)
    rb = run_workload("bytefs", MicroCreate(**wl_args), geometry=SMALL_GEOMETRY)
    re4 = run_workload("ext4", MicroCreate(**wl_args), geometry=SMALL_GEOMETRY)
    assert rb.byte_write > 0
    assert re4.byte_write == 0
    assert rb.meta_write < re4.meta_write


def test_config_echo_is_opt_in_and_golden_safe():
    """Without ``config_echo`` the JSON document must not grow new keys —
    the golden differential fixtures pin its exact byte content."""
    wl_args = dict(n_files=8, n_threads=1, seed=7)
    plain = run_workload(
        "bytefs", MicroCreate(**wl_args), geometry=SMALL_GEOMETRY
    )
    doc = plain.to_json()
    assert "seed" not in doc
    assert "config" not in doc

    echoed = run_workload(
        "bytefs", MicroCreate(**wl_args), geometry=SMALL_GEOMETRY,
        config_echo={"workload": "create", "log_bytes": 1 << 20},
    )
    doc = echoed.to_json()
    assert doc["seed"] == 7
    assert doc["config"] == {"workload": "create", "log_bytes": 1 << 20}
    # the echo annotates the document without perturbing the run itself
    assert echoed.throughput == plain.throughput
