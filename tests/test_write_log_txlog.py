"""Unit tests for log-region space accounting and the TxLog."""

import pytest

from repro.ssd.firmware.txlog import TxLog, TxLogFullError
from repro.ssd.firmware.write_log import (
    LogFullError,
    LogRegion,
    aligned_entry_size,
)


def test_aligned_entry_size():
    assert aligned_entry_size(1) == 64
    assert aligned_entry_size(64) == 64
    assert aligned_entry_size(65) == 128
    with pytest.raises(ValueError):
        aligned_entry_size(0)


def make_region(capacity=1024):
    return LogRegion(capacity, 4096, 64 << 10, 1 << 20)


def test_region_consume_and_utilization():
    r = make_region(1024)
    off0 = r.consume(64)
    off1 = r.consume(100)  # aligned to 128
    assert off0 == 0
    assert off1 == 64
    assert r.used == 64 + 128
    assert r.utilization() == (64 + 128) / 1024


def test_region_full_raises():
    r = make_region(128)
    r.consume(64)
    r.consume(64)
    with pytest.raises(LogFullError):
        r.consume(1)


def test_region_reset():
    r = make_region(256)
    r.consume(64)
    r.reset()
    assert r.used == 0
    assert r.free == 256


def test_txlog_commit_and_membership():
    tx = TxLog(64)
    tx.commit(5)
    tx.commit(9)
    tx.commit(5)  # idempotent
    assert tx.is_committed(5)
    assert not tx.is_committed(6)
    assert tx.committed_in_order() == [5, 9]
    assert tx.commit_position(9) == 1
    assert len(tx) == 2


def test_txlog_capacity():
    tx = TxLog(8)  # 2 entries
    tx.commit(1)
    tx.commit(2)
    with pytest.raises(TxLogFullError):
        tx.commit(3)


def test_txlog_clear():
    tx = TxLog(64)
    tx.commit(1)
    tx.clear()
    assert not tx.is_committed(1)
    assert len(tx) == 0
